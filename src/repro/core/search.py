"""Alternative configuration-search strategies (Section 3.3's candidates).

The paper considers three families before settling on the GA:

* **recursive random search** [56] — "sensitive to getting stuck in
  local optima";
* **pattern search** [46] — "typically suffers from slow local
  (asymptotic) convergence rates";
* **genetic algorithms** — "well-known for being robust against local
  optima" (the one DAC uses, :mod:`repro.core.ga`).

All three (plus plain random search as the floor) are implemented here
behind one interface so the design choice is testable: every strategy
minimizes a vectorized fitness over the encoded [0,1]^d space within a
fixed evaluation budget and returns a :class:`SearchResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.common.space import Configuration, ConfigurationSpace
from repro.core.ga import GeneticAlgorithm, MemoizedFitness

Fitness = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one budgeted search."""

    strategy: str
    best_configuration: Configuration
    best_fitness: float
    evaluations_used: int
    #: best-so-far after each evaluation batch (for convergence plots)
    history: Tuple[float, ...]


class SearchStrategy:
    """Interface: minimize ``fitness`` within ``budget`` evaluations."""

    name: str = "abstract"

    def __init__(self, space: ConfigurationSpace):
        self.space = space

    def minimize(
        self,
        fitness: Fitness,
        budget: int,
        rng: np.random.Generator,
        seed_vectors: Optional[Sequence[np.ndarray]] = None,
    ) -> SearchResult:
        raise NotImplementedError


class RandomSearch(SearchStrategy):
    """Uniform sampling — the floor every smarter strategy must beat."""

    name = "random"

    def minimize(self, fitness, budget, rng, seed_vectors=None):
        d = len(self.space)
        batch = max(1, min(256, budget))
        best_vec = None
        best = np.inf
        used = 0
        history = []
        while used < budget:
            n = min(batch, budget - used)
            pop = rng.random((n, d))
            if used == 0 and seed_vectors:
                seeds = np.clip(np.asarray(list(seed_vectors))[: n], 0.0, 1.0)
                pop[: len(seeds)] = seeds
            scores = np.asarray(fitness(pop))
            used += n
            i = int(np.argmin(scores))
            if scores[i] < best:
                best = float(scores[i])
                best_vec = pop[i].copy()
            history.append(best)
        return SearchResult(
            strategy=self.name,
            best_configuration=self.space.decode(best_vec),
            best_fitness=best,
            evaluations_used=used,
            history=tuple(history),
        )


class RecursiveRandomSearch(SearchStrategy):
    """Ye & Kalyanaraman's RRS: sample globally, then recursively shrink
    a sampling box around the incumbent; restart globally on stagnation.

    The re-scaling concentrates samples near the best point found — the
    behaviour that makes it fast initially and prone to local optima,
    exactly the property the paper cites against it.
    """

    name = "recursive-random"

    def __init__(
        self,
        space: ConfigurationSpace,
        explore_samples: int = 40,
        shrink: float = 0.6,
        stagnation_limit: int = 3,
        min_box: float = 0.01,
    ):
        super().__init__(space)
        self.explore_samples = explore_samples
        self.shrink = shrink
        self.stagnation_limit = stagnation_limit
        self.min_box = min_box

    def minimize(self, fitness, budget, rng, seed_vectors=None):
        d = len(self.space)
        used = 0
        history = []
        global_best = np.inf
        global_vec = None

        def evaluate(pop: np.ndarray) -> np.ndarray:
            nonlocal used
            used += len(pop)
            return np.asarray(fitness(pop))

        while used < budget:
            # -- explore phase: global uniform samples ------------------
            n = min(self.explore_samples, budget - used)
            pop = rng.random((n, d))
            if used == 0 and seed_vectors:
                seeds = np.clip(np.asarray(list(seed_vectors))[:n], 0.0, 1.0)
                pop[: len(seeds)] = seeds
            scores = evaluate(pop)
            i = int(np.argmin(scores))
            center, incumbent = pop[i].copy(), float(scores[i])

            # -- exploit phase: shrink a box around the incumbent --------
            half_width = 0.25
            stagnant = 0
            while used < budget and half_width > self.min_box:
                n = min(self.explore_samples // 2 or 1, budget - used)
                low = np.clip(center - half_width, 0.0, 1.0)
                high = np.clip(center + half_width, 0.0, 1.0)
                pop = rng.uniform(low, high, size=(n, d))
                scores = evaluate(pop)
                i = int(np.argmin(scores))
                if scores[i] < incumbent:
                    incumbent = float(scores[i])
                    center = pop[i].copy()
                    stagnant = 0
                else:
                    stagnant += 1
                    if stagnant >= self.stagnation_limit:
                        half_width *= self.shrink
                        stagnant = 0
                if incumbent < global_best:
                    global_best = incumbent
                    global_vec = center.copy()
                history.append(global_best)
            if incumbent < global_best:
                global_best, global_vec = incumbent, center.copy()
            history.append(global_best)

        return SearchResult(
            strategy=self.name,
            best_configuration=self.space.decode(global_vec),
            best_fitness=global_best,
            evaluations_used=used,
            history=tuple(history),
        )


class PatternSearch(SearchStrategy):
    """Hooke-Jeeves coordinate pattern search.

    Polls ± the current step along every coordinate; on failure the step
    halves.  Convergence is local and slow in high dimension — the
    paper's stated reason to prefer the GA.
    """

    name = "pattern"

    def __init__(self, space: ConfigurationSpace, initial_step: float = 0.25):
        super().__init__(space)
        self.initial_step = initial_step

    def minimize(self, fitness, budget, rng, seed_vectors=None):
        d = len(self.space)
        if seed_vectors:
            current = np.clip(np.asarray(seed_vectors[0], dtype=float), 0.0, 1.0)
        else:
            current = rng.random(d)
        score = float(np.asarray(fitness(current[None, :]))[0])
        used = 1
        step = self.initial_step
        history = [score]

        while used < budget and step > 1e-4:
            # Poll all 2d neighbours in one vectorized batch.
            n = min(2 * d, budget - used)
            moves = np.zeros((2 * d, d))
            moves[np.arange(d), np.arange(d)] = step
            moves[d + np.arange(d), np.arange(d)] = -step
            candidates = np.clip(current + moves[:n], 0.0, 1.0)
            scores = np.asarray(fitness(candidates))
            used += n
            i = int(np.argmin(scores))
            if scores[i] < score:
                # Pattern move: double the successful direction.
                direction = candidates[i] - current
                current, score = candidates[i], float(scores[i])
                if used < budget:
                    jump = np.clip(current + direction, 0.0, 1.0)
                    jump_score = float(np.asarray(fitness(jump[None, :]))[0])
                    used += 1
                    if jump_score < score:
                        current, score = jump, jump_score
            else:
                step *= 0.5
            history.append(score)

        return SearchResult(
            strategy=self.name,
            best_configuration=self.space.decode(current),
            best_fitness=score,
            evaluations_used=used,
            history=tuple(history),
        )


class GaSearch(SearchStrategy):
    """The paper's GA, adapted to the budgeted interface."""

    name = "GA"

    def __init__(self, space: ConfigurationSpace, population_size: int = 60):
        super().__init__(space)
        self.population_size = population_size

    def minimize(self, fitness, budget, rng, seed_vectors=None):
        generations = max(1, budget // self.population_size - 1)
        ga = GeneticAlgorithm(self.space, population_size=self.population_size)
        if not isinstance(fitness, MemoizedFitness):
            # Elites/clones recur across generations; the memo returns
            # their exact prior scores without touching the model.
            fitness = MemoizedFitness(fitness)
        result = ga.minimize(
            fitness, rng, generations=generations,
            seed_vectors=seed_vectors, patience=None,
        )
        return SearchResult(
            strategy=self.name,
            best_configuration=result.best_configuration,
            best_fitness=result.best_fitness,
            evaluations_used=self.population_size * (result.generations + 1),
            history=result.history,
        )


#: Strategy registry for the CLI and the search ablation.
STRATEGIES = {
    "GA": GaSearch,
    "random": RandomSearch,
    "recursive-random": RecursiveRandomSearch,
    "pattern": PatternSearch,
}


def make_strategy(name: str, space: ConfigurationSpace) -> SearchStrategy:
    try:
        return STRATEGIES[name](space)
    except KeyError:
        raise KeyError(
            f"unknown search strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
