"""Tuning sessions: multi-program orchestration with on-disk caching.

A production deployment of DAC tunes *many* periodic jobs against one
cluster and wants the expensive artifacts — training sets (hours of
cluster time) and fitted models — reused across invocations.
:class:`DacSession` provides that layer:

* training sets are cached as CSV files under the session directory
  (the same format as the paper's R pipeline, via :mod:`repro.io`);
* collections are *incremental*: asking for more examples tops up the
  cached set instead of re-collecting from scratch;
* every substrate execution flows through one engine — a
  :class:`~repro.engine.CachedBackend` whose on-disk store lives beside
  the CSVs — so top-up collections, re-fits after a deleted CSV, and
  any other caller keyed on the same triples reuse prior runs;
* tuned configurations are exported as ``<program>-<size>-spark-dac.conf``
  files ready for ``spark-submit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.collecting import Collector, TrainingSet
from repro.core.tuner import DacTuner, TuningReport
from repro.engine import CachedBackend, ExecutionBackend, InProcessBackend
from repro.io import load_training_set, save_spark_conf, save_training_set
from repro.sparksim.cluster import PAPER_CLUSTER, ClusterSpec
from repro.sparksim.confspace import SPARK_CONF_SPACE
from repro.workloads import get_workload


@dataclass(frozen=True)
class SessionEntry:
    """What the session knows about one program."""

    program: str
    examples_collected: int
    model_fitted: bool
    tuned_sizes: tuple


class DacSession:
    """A persistent tuning workspace for one cluster.

    Parameters
    ----------
    directory:
        Where training-set CSVs and tuned conf files live.  Created if
        missing.
    cluster:
        Hardware all programs in this session run on.
    n_trees / learning_rate:
        HM parameters shared by every program's model.
    backend:
        Optional substrate backend (e.g. a
        :class:`~repro.engine.ProcessPoolBackend` for parallel
        collection).  It is always wrapped in a
        :class:`~repro.engine.CachedBackend` persisting to
        ``<directory>/engine-cache``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        cluster: ClusterSpec = PAPER_CLUSTER,
        n_trees: int = 300,
        learning_rate: float = 0.1,
        seed: int = 0,
        backend: Optional[ExecutionBackend] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cluster = cluster
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.seed = seed
        inner = backend if backend is not None else InProcessBackend(cluster)
        self.engine = CachedBackend(inner, directory=self.directory / "engine-cache")
        self._tuners: Dict[str, DacTuner] = {}
        self._tuned: Dict[str, Dict[float, TuningReport]] = {}

    # ------------------------------------------------------------------
    def _csv_path(self, program: str) -> Path:
        return self.directory / f"{program.upper()}-training.csv"

    def training_set(self, program: str, min_examples: int = 400) -> TrainingSet:
        """Load-or-collect a training set with at least ``min_examples``.

        Cached rows are reused; only the shortfall is collected (on a
        fresh random stream so the top-up never duplicates cached
        configurations).
        """
        if min_examples < 1:
            raise ValueError("min_examples must be positive")
        workload = get_workload(program)
        path = self._csv_path(workload.abbr)
        cached: Optional[TrainingSet] = None
        if path.exists():
            cached = load_training_set(path, SPARK_CONF_SPACE)

        have = len(cached) if cached is not None else 0
        if have < min_examples:
            collector = Collector(
                workload, self.cluster, seed=self.seed, engine=self.engine
            )
            top_up = collector.collect(
                min_examples - have, stream=f"session-{have}"
            )
            merged = cached.merged_with(top_up) if cached is not None else top_up
            save_training_set(merged, path)
            cached = merged
        return cached

    # ------------------------------------------------------------------
    def tuner(self, program: str, min_examples: int = 400) -> DacTuner:
        """A fitted tuner for ``program``, built from the cached data."""
        workload = get_workload(program)
        key = workload.abbr
        if key not in self._tuners:
            training = self.training_set(key, min_examples)
            tuner = DacTuner(
                workload,
                cluster=self.cluster,
                n_trees=self.n_trees,
                learning_rate=self.learning_rate,
                seed=self.seed,
                engine=self.engine,
            )
            tuner.fit(training)
            self._tuners[key] = tuner
        return self._tuners[key]

    def tune(
        self,
        program: str,
        datasize: float,
        generations: int = 60,
        export: bool = True,
    ) -> TuningReport:
        """Tune one program-input pair, optionally exporting the conf file."""
        tuner = self.tuner(program)
        report = tuner.tune(datasize, generations=generations)
        self._tuned.setdefault(report.program, {})[datasize] = report
        if export:
            conf_path = self.conf_path(report.program, datasize)
            save_spark_conf(
                report.configuration,
                conf_path,
                comment=(
                    f"{report.program} @ {datasize}, "
                    f"predicted {report.predicted_seconds:.0f}s, "
                    f"model err {report.model_holdout_error * 100:.1f}%"
                ),
            )
        return report

    def conf_path(self, program: str, datasize: float) -> Path:
        return self.directory / f"{program.upper()}-{datasize:g}-spark-dac.conf"

    def close(self) -> None:
        """Release the engine's resources (worker pools); idempotent."""
        self.engine.close()

    def __enter__(self) -> "DacSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, SessionEntry]:
        """Summary of everything this session has produced."""
        out: Dict[str, SessionEntry] = {}
        programs = {p.stem.split("-")[0] for p in self.directory.glob("*-training.csv")}
        programs |= set(self._tuners)
        for program in sorted(programs):
            path = self._csv_path(program)
            examples = 0
            if path.exists():
                examples = sum(1 for _ in path.open()) - 1
            out[program] = SessionEntry(
                program=program,
                examples_collected=examples,
                model_fitted=program in self._tuners,
                tuned_sizes=tuple(sorted(self._tuned.get(program, {}))),
            )
        return out
