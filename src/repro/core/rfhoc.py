"""RFHOC reimplemented in the Spark context (Section 5.6's comparison).

RFHOC [4] is the state-of-the-art Hadoop auto-tuner: random-forest
performance models searched by a genetic algorithm.  Following the
paper's reimplementation, it uses the same 41-parameter space and the
same collected executions as DAC but differs in the two ways the paper
highlights:

* the model is a plain random forest rather than HM (Section 2.2.2
  shows RF's higher error on this problem);
* it is **datasize-unaware**: the input size is not a model feature, so
  the search returns one configuration per program, reused for every
  input size — the root of Figure 13's "DAC ~ RFHOC on small inputs,
  DAC wins on large inputs" pattern.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.rng import derive_rng
from repro.common.space import Configuration, ConfigurationSpace
from repro.core.collecting import Collector, TrainingSet
from repro.core.ga import GaResult, GeneticAlgorithm
from repro.engine import ExecutionBackend
from repro.models.forest import RandomForest
from repro.sparksim.cluster import PAPER_CLUSTER, ClusterSpec
from repro.sparksim.confspace import SPARK_CONF_SPACE
from repro.workloads.base import Workload


@dataclass(frozen=True)
class RfhocReport:
    """Outcome of an RFHOC tuning run (one per program)."""

    program: str
    configuration: Configuration
    predicted_seconds: float
    ga: GaResult
    modeling_wall_seconds: float
    searching_wall_seconds: float


class RfhocTuner:
    """RF + GA tuner over the 41 parameters, ignoring datasize."""

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec = PAPER_CLUSTER,
        space: ConfigurationSpace = SPARK_CONF_SPACE,
        n_train: int = 600,
        n_trees: int = 100,
        max_splits: int = 100,
        seed: int = 0,
        engine: Optional[ExecutionBackend] = None,
    ):
        self.workload = workload
        self.cluster = cluster
        self.space = space
        self.n_train = n_train
        self.n_trees = n_trees
        self.max_splits = max_splits
        self.seed = seed
        self.collector = Collector(workload, cluster, space, seed=seed, engine=engine)
        self.engine = self.collector.engine
        self.training_set: Optional[TrainingSet] = None
        self.model: Optional[RandomForest] = None
        self._modeling_seconds = 0.0

    # ------------------------------------------------------------------
    def fit(self, training_set: Optional[TrainingSet] = None) -> RandomForest:
        """Train the RF on configurations only (datasize column dropped)."""
        self.training_set = training_set or self.training_set
        if self.training_set is None:
            self.training_set = self.collector.collect(self.n_train, stream="train")
        features = self.training_set.features()[:, :-1]  # drop dsize
        start = time.perf_counter()
        self.model = RandomForest(
            n_trees=self.n_trees,
            max_splits=self.max_splits,
            random_state=self.seed,
        )
        self.model.fit(features, self.training_set.log_times())
        self._modeling_seconds = time.perf_counter() - start
        return self.model

    def tune(
        self,
        generations: int = 100,
        population_size: int = 60,
        patience: Optional[int] = 25,
    ) -> RfhocReport:
        """One search per program; the result is reused for all sizes."""
        if self.model is None:
            self.fit()
        assert self.model is not None and self.training_set is not None
        model = self.model

        def fitness(pop: np.ndarray) -> np.ndarray:
            return np.exp(model.predict(pop))

        seeds = [
            self.space.encode(v.configuration)
            for v in self.training_set.vectors[:population_size]
        ]
        ga = GeneticAlgorithm(self.space, population_size=population_size)
        rng = derive_rng("rfhoc-ga", self.workload.abbr, self.seed)

        start = time.perf_counter()
        result = ga.minimize(
            fitness, rng, generations=generations, seed_vectors=seeds, patience=patience
        )
        search_seconds = time.perf_counter() - start
        return RfhocReport(
            program=self.workload.abbr,
            configuration=result.best_configuration,
            predicted_seconds=result.best_fitness,
            ga=result,
            modeling_wall_seconds=self._modeling_seconds,
            searching_wall_seconds=search_seconds,
        )
