"""DAC: the paper's datasize-aware auto-tuner (Section 3).

Three components, mirroring Figure 4:

* **collecting** (:mod:`repro.core.collecting`) — the Configuration
  Generator (CG) + Dataset-size Generator (DG) drive simulated
  executions and collect performance vectors
  ``Pv = {t, c1..c41, dsize}``;
* **modeling** — a :class:`~repro.models.hierarchical.HierarchicalModel`
  fitted on the collected training set;
* **searching** (:mod:`repro.core.ga`) — a genetic algorithm that
  minimizes the model's predicted execution time over the 41-dimensional
  configuration space for the target dataset size.

:class:`~repro.core.tuner.DacTuner` wires them together; baselines
(:mod:`repro.core.baselines`, :mod:`repro.core.rfhoc`,
:mod:`repro.core.expert`) provide the comparison points of Figure 12.
"""

from repro.core.collecting import Collector, PerformanceVector, TrainingSet
from repro.core.ga import GaResult, GeneticAlgorithm
from repro.core.search import (
    GaSearch,
    PatternSearch,
    RandomSearch,
    RecursiveRandomSearch,
    SearchResult,
    make_strategy,
)
from repro.core.session import DacSession
from repro.core.tuner import DacTuner, TuningReport
from repro.core.baselines import default_configuration
from repro.core.expert import ExpertTuner
from repro.core.rfhoc import RfhocTuner

__all__ = [
    "Collector",
    "DacSession",
    "DacTuner",
    "ExpertTuner",
    "GaResult",
    "GaSearch",
    "GeneticAlgorithm",
    "PatternSearch",
    "PerformanceVector",
    "RandomSearch",
    "RecursiveRandomSearch",
    "RfhocTuner",
    "SearchResult",
    "TrainingSet",
    "TuningReport",
    "default_configuration",
    "make_strategy",
]
