"""Training sets as CSV files, mirroring the paper's R pipeline.

One row per performance vector (Equation 5): the execution time, the 41
configuration parameter values (by Table-2 name), and the dataset size
in natural units and bytes.  The header records parameter names so files
remain valid if the column order ever changes.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Union

from repro.common.space import ConfigurationSpace
from repro.core.collecting import PerformanceVector, TrainingSet

_META_COLUMNS = ("t_seconds", "dsize", "dsize_bytes")


def dumps_training_set(training_set: TrainingSet) -> str:
    """Serialize a training set to CSV text (no filesystem round trip)."""
    space = training_set.space
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow([*_META_COLUMNS, *space.names])
    for v in training_set.vectors:
        writer.writerow(
            [
                repr(v.seconds),
                repr(v.datasize),
                repr(v.datasize_bytes),
                *[_serialize(v.configuration[name]) for name in space.names],
            ]
        )
    return buffer.getvalue()


def save_training_set(training_set: TrainingSet, path: Union[str, Path]) -> None:
    """Write a training set to ``path`` as CSV."""
    Path(path).write_text(dumps_training_set(training_set), newline="")


def load_training_set(
    path: Union[str, Path], space: ConfigurationSpace
) -> TrainingSet:
    """Read a CSV written by :func:`save_training_set`.

    The file's parameter columns must exactly cover ``space``'s names
    (any order); unknown or missing columns raise ``ValueError``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        return loads_training_set(handle.read(), space, source=str(path))


def loads_training_set(
    text: str, space: ConfigurationSpace, source: str = "<training set>"
) -> TrainingSet:
    """Parse CSV text produced by :func:`dumps_training_set`."""
    path = source  # error messages name the caller's source
    with io.StringIO(text, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        for column in _META_COLUMNS:
            if column not in header:
                raise ValueError(f"{path}: missing column {column!r}")
        param_columns = [c for c in header if c not in _META_COLUMNS]
        if set(param_columns) != set(space.names):
            missing = set(space.names) - set(param_columns)
            extra = set(param_columns) - set(space.names)
            raise ValueError(
                f"{path}: parameter columns do not match the space "
                f"(missing={sorted(missing)}, unknown={sorted(extra)})"
            )
        index = {name: header.index(name) for name in header}

        vectors: List[PerformanceVector] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(f"{path}:{line_no}: wrong column count")
            values = {
                name: _deserialize(space[name], row[index[name]])
                for name in space.names
            }
            vectors.append(
                PerformanceVector(
                    seconds=float(row[index["t_seconds"]]),
                    configuration=space.from_dict(values),
                    datasize=float(row[index["dsize"]]),
                    datasize_bytes=float(row[index["dsize_bytes"]]),
                )
            )
    if not vectors:
        raise ValueError(f"{path}: no data rows")
    return TrainingSet(space, vectors)


def _serialize(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _deserialize(parameter, text: str):
    from repro.common.space import CategoricalParameter, FloatParameter, IntParameter

    if isinstance(parameter, CategoricalParameter):
        if parameter.choices == (False, True):
            if text not in ("true", "false"):
                raise ValueError(f"{parameter.name}: bad boolean {text!r}")
            return text == "true"
        return text
    if isinstance(parameter, FloatParameter):
        return float(text)
    if isinstance(parameter, IntParameter):
        return int(text)
    raise TypeError(f"unsupported parameter type for {parameter.name}")
