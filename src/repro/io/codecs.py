"""Typed artifact codecs: version negotiation for the run store.

Every typed artifact in the :class:`~repro.store.RunStore` is written
under a ``(kind, codec)`` pair recorded in its index entry and header.
This registry maps those pairs to the code that encodes/decodes them,
which is what lets new writers and old stores coexist:

* new artifacts are written with the kind's *default* codec (the
  columnar blob format, ``blob1``);
* old artifacts (``csv`` training sets, ``pickle`` models) keep their
  original codec name and decode through the legacy paths forever;
* an artifact written by a *newer* code level carries a codec name this
  registry doesn't know, and reads back as absent — the caller
  regenerates it, which is the store's invalidation idiom.

A codec may also implement ``open(path, offset, **ctx)`` — the
zero-copy path: given the artifact file and the payload's byte offset
inside it, return the object backed by read-only ``np.memmap`` views
instead of heap copies.  Codecs without ``open`` simply fall back to
the copying path under ``mode="mmap"``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.store import blobfmt

#: Name of the columnar-blob codec (see :mod:`repro.store.blobfmt`).
BLOB_CODEC = "blob1"


class CodecError(Exception):
    """An object that cannot be encoded by the requested codec."""


@dataclass(frozen=True)
class Codec:
    """One (kind, name) serialization strategy."""

    kind: str
    name: str
    encode: Callable[..., bytes]
    decode: Callable[..., object]
    open: Optional[Callable[..., object]] = None


_REGISTRY: Dict[Tuple[str, str], Codec] = {}
_DEFAULTS: Dict[str, str] = {}


def register(codec: Codec, default: bool = False) -> Codec:
    _REGISTRY[(codec.kind, codec.name)] = codec
    if default:
        _DEFAULTS[codec.kind] = codec.name
    return codec


def lookup(kind: str, name: str) -> Optional[Codec]:
    """The codec for a stored ``(kind, codec)`` pair, or ``None``
    (unknown = written by newer code = treat the artifact as absent)."""
    return _REGISTRY.get((kind, name))


def default_for(kind: str) -> Codec:
    return _REGISTRY[(kind, _DEFAULTS[kind])]


# ----------------------------------------------------------------------
# Training sets
# ----------------------------------------------------------------------
def _space_or_default(space):
    if space is not None:
        return space
    from repro.sparksim.confspace import SPARK_CONF_SPACE

    return SPARK_CONF_SPACE


def _encode_training_set_csv(training_set) -> bytes:
    from repro.io.csvsets import dumps_training_set

    return dumps_training_set(training_set).encode("utf-8")


def _decode_training_set_csv(payload: bytes, space=None, source="store"):
    from repro.io.csvsets import loads_training_set

    return loads_training_set(
        payload.decode("utf-8"), _space_or_default(space), source=source
    )


def _encode_training_set_blob(training_set) -> bytes:
    columns = training_set.to_columns()
    meta = {
        "n": len(training_set),
        "space": training_set.space.name,
        "params": list(training_set.space.names),
    }
    return blobfmt.encode_sections(columns, meta=meta, kind="training_set")


def _training_set_from_blob(header, sections, space):
    from repro.core.collecting import TrainingSet

    space = _space_or_default(space)
    meta = header.get("meta", {})
    if list(meta.get("params", [])) != list(space.names):
        raise CodecError("stored training set covers a different parameter space")
    return TrainingSet.from_columns(space, sections)


def _decode_training_set_blob(payload: bytes, space=None, source="store"):
    header, sections = blobfmt.decode_sections(payload, verify=False)
    return _training_set_from_blob(header, sections, space)


def _open_training_set_blob(path, offset: int, space=None, source="store"):
    header, sections = blobfmt.map_sections(path, offset=offset)
    return _training_set_from_blob(header, sections, space)


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------
def _encode_model_pickle(model) -> bytes:
    return pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_model_pickle(payload: bytes):
    return pickle.loads(payload)


def _encode_model_blob(model) -> bytes:
    try:
        sections, meta = model.to_sections()
    except (AttributeError, ValueError) as exc:
        raise CodecError(f"model does not lower to sections ({exc})") from exc
    return blobfmt.encode_sections(sections, meta=meta, kind="model")


def _model_from_blob(header, sections):
    from repro.models.hierarchical import HierarchicalModel

    return HierarchicalModel.from_sections(sections, header.get("meta", {}))


def _decode_model_blob(payload: bytes):
    header, sections = blobfmt.decode_sections(payload, verify=False)
    return _model_from_blob(header, sections)


def _open_model_blob(path, offset: int):
    header, sections = blobfmt.map_sections(path, offset=offset)
    return _model_from_blob(header, sections)


register(
    Codec(
        kind="training_set",
        name="csv",
        encode=_encode_training_set_csv,
        decode=_decode_training_set_csv,
    )
)
register(
    Codec(
        kind="training_set",
        name=BLOB_CODEC,
        encode=_encode_training_set_blob,
        decode=_decode_training_set_blob,
        open=_open_training_set_blob,
    ),
    default=True,
)
register(
    Codec(
        kind="model",
        name="pickle",
        encode=_encode_model_pickle,
        decode=_decode_model_pickle,
    )
)
register(
    Codec(
        kind="model",
        name=BLOB_CODEC,
        encode=_encode_model_blob,
        decode=_decode_model_blob,
        open=_open_model_blob,
    ),
    default=True,
)
