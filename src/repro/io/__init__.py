"""Persistence: training-set CSVs and Spark configuration files.

The paper's implementation (Section 3.4) stores the training set ``S``
"in a CSV file" and writes tuned configurations back to Spark's
configuration file, ``spark-dac.conf``, for ``spark-submit`` to pick
up.  This package reproduces both formats so tuning artifacts survive
across sessions and tuned configurations are directly usable on a real
cluster.
"""

from repro.io.csvsets import (
    dumps_training_set,
    load_training_set,
    loads_training_set,
    save_training_set,
)
from repro.io.sparkconf_file import (
    format_spark_submit,
    load_spark_conf,
    save_spark_conf,
)

__all__ = [
    "dumps_training_set",
    "format_spark_submit",
    "load_spark_conf",
    "load_training_set",
    "loads_training_set",
    "save_spark_conf",
    "save_training_set",
]
