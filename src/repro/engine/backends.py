"""Execution backends: where substrate runs actually happen.

:class:`ExecutionBackend` is the one interface every caller in
``repro.core``, ``repro.experiments`` and the CLI goes through; the
simulator itself is an implementation detail behind it.  Two concrete
backends ship:

* :class:`InProcessBackend` — the seed repo's behaviour: one
  :class:`SparkSimulator`, requests executed sequentially in the calling
  process.
* :class:`ProcessPoolBackend` — fan-out over CPU cores with
  ``concurrent.futures.ProcessPoolExecutor``.  Results are *identical*
  to in-process execution because the simulator seeds every stochastic
  draw from the (program, datasize, configuration) triple
  (:func:`repro.common.rng.stable_seed` is process-stable), so the
  placement of a request on a worker cannot change its measurement.

Failure policy (shared by both): a simulator exception retries with
bounded exponential backoff; an exhausted request yields a typed
:class:`FailedRun` in its batch slot instead of poisoning the batch.
"""

from __future__ import annotations

import abc
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.common.space import Configuration
from repro.engine.request import (
    ExecOutcome,
    ExecRequest,
    ExecResult,
    FailedRun,
    require_success,
)
from repro.engine.stats import EngineStats, StatsRecorder
from repro.sparksim.cluster import PAPER_CLUSTER, ClusterSpec
from repro.sparksim.dag import JobSpec
from repro.sparksim.simulator import RunResult, SparkSimulator

#: Default failure policy: 3 attempts, 50 ms base backoff (doubling).
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_SECONDS = 0.05


def _execute_with_retry(
    simulator: SparkSimulator,
    job: JobSpec,
    config: Configuration,
    max_attempts: int,
    backoff_seconds: float,
    backend: str,
) -> ExecOutcome:
    """Run one request under the bounded-backoff failure policy."""
    start = time.perf_counter()
    error: Optional[BaseException] = None
    for attempt in range(1, max_attempts + 1):
        try:
            run = simulator.run(job, config)
        except Exception as exc:  # noqa: BLE001 - the policy's whole point
            error = exc
            if attempt < max_attempts and backoff_seconds > 0:
                time.sleep(backoff_seconds * (2 ** (attempt - 1)))
            continue
        return ExecResult(
            run=run,
            wall_seconds=time.perf_counter() - start,
            attempts=attempt,
            backend=backend,
        )
    return FailedRun(
        program=job.program,
        datasize_bytes=job.datasize_bytes,
        error=f"{type(error).__name__}: {error}",
        attempts=max_attempts,
        backend=backend,
        wall_seconds=time.perf_counter() - start,
    )


class ExecutionBackend(abc.ABC):
    """Batch execution of (program, configuration, datasize) requests.

    The contract every implementation upholds:

    * :meth:`submit` returns one outcome per request, in request order;
    * outcomes for the same request are deterministic across backends
      and processes (the simulator's seeding guarantees it);
    * a failing request yields :class:`FailedRun` in its slot — the
      batch itself never raises.
    """

    #: Short identifier stamped on every outcome this backend produces.
    name: str = "backend"

    #: True when :meth:`map_tasks` actually runs tasks concurrently.
    #: Callers with speculative work (e.g. parallel HM component
    #: training that may overshoot an early stop) consult this to avoid
    #: wasting compute on serial backends.
    supports_parallel_tasks: bool = False

    def __init__(self) -> None:
        self._recorder = StatsRecorder()

    # -- the protocol ---------------------------------------------------
    @abc.abstractmethod
    def submit(self, requests: Sequence[ExecRequest]) -> List[ExecOutcome]:
        """Execute a batch; one outcome per request, order preserved."""

    @abc.abstractmethod
    def signature(self) -> str:
        """Stable identity of the substrate (cluster + noise model).

        Two backends with equal signatures produce equal measurements
        for equal requests — the property cache keys rely on.
        """

    # -- conveniences ---------------------------------------------------
    def run(self, job: JobSpec, config: Configuration) -> RunResult:
        """Single-request sugar; raises :class:`ExecutionError` on failure."""
        return require_success(self.submit([ExecRequest(job=job, config=config)]))[0]

    def map_tasks(self, fn, items: Sequence) -> List:
        """Generic compute fan-out: ``[fn(item) for item in items]``.

        Unlike :meth:`submit` this runs arbitrary picklable work (model
        training, not substrate requests) on the backend's resources.
        The base implementation is sequential; pool backends override it
        and set :attr:`supports_parallel_tasks`.  ``fn`` must be a
        module-level callable when the backend crosses process
        boundaries.
        """
        return [fn(item) for item in items]

    @property
    def stats(self) -> EngineStats:
        """Snapshot of everything this backend has executed so far."""
        return self._recorder.snapshot()

    def close(self) -> None:
        """Release any held resources (worker pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessBackend(ExecutionBackend):
    """Sequential execution in the calling process (seed behaviour)."""

    name = "inprocess"

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        noise_sigma: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        simulator: Optional[SparkSimulator] = None,
    ):
        super().__init__()
        self.cluster = cluster
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        if simulator is not None:
            self._simulator = simulator
        elif noise_sigma is not None:
            self._simulator = SparkSimulator(cluster, noise_sigma)
        else:
            self._simulator = SparkSimulator(cluster)

    def submit(self, requests: Sequence[ExecRequest]) -> List[ExecOutcome]:
        # Sequential execution: a request's queue wait is the time the
        # batch spent on the requests ahead of it.
        batch_start = time.perf_counter()
        outcomes: List[ExecOutcome] = []
        for request in requests:
            queue_wait = time.perf_counter() - batch_start
            outcome = _execute_with_retry(
                self._simulator,
                request.job,
                request.config,
                self.max_attempts,
                self.backoff_seconds,
                self.name,
            )
            self._recorder.record(outcome, queue_wait=queue_wait)
            outcomes.append(outcome)
        return outcomes

    def signature(self) -> str:
        return f"sparksim|{self.cluster!r}|sigma={self._simulator.noise_sigma!r}"


# ----------------------------------------------------------------------
# Process-pool workers.  Module-level so they survive pickling under any
# multiprocessing start method; the simulator is built once per worker.
# ----------------------------------------------------------------------
_WORKER_SIMULATOR: Optional[SparkSimulator] = None


def _init_worker(cluster: ClusterSpec, noise_sigma: Optional[float]) -> None:
    global _WORKER_SIMULATOR
    if noise_sigma is not None:
        _WORKER_SIMULATOR = SparkSimulator(cluster, noise_sigma)
    else:
        _WORKER_SIMULATOR = SparkSimulator(cluster)


def _run_in_worker(
    payload: Tuple[JobSpec, Configuration, int, float],
) -> ExecOutcome:
    job, config, max_attempts, backoff_seconds = payload
    assert _WORKER_SIMULATOR is not None, "worker initializer did not run"
    return _execute_with_retry(
        _WORKER_SIMULATOR,
        job,
        config,
        max_attempts,
        backoff_seconds,
        ProcessPoolBackend.name,
    )


class ProcessPoolBackend(ExecutionBackend):
    """Chunked fan-out over a pool of worker processes.

    Deterministic: every stochastic draw in the simulator is keyed by
    the request triple, so results are byte-identical to
    :class:`InProcessBackend` regardless of worker count, chunking, or
    completion order (``Executor.map`` preserves request order).
    """

    name = "processpool"
    supports_parallel_tasks = True

    def __init__(
        self,
        jobs: Optional[int] = None,
        cluster: ClusterSpec = PAPER_CLUSTER,
        noise_sigma: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    ):
        super().__init__()
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be positive")
        self.cluster = cluster
        self.noise_sigma = noise_sigma
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.cluster, self.noise_sigma),
            )
        return self._executor

    def submit(self, requests: Sequence[ExecRequest]) -> List[ExecOutcome]:
        if not requests:
            return []
        payloads = [
            (r.job, r.config, self.max_attempts, self.backoff_seconds)
            for r in requests
        ]
        # ~4 chunks per worker balances scheduling slack against the
        # per-chunk pickling of shared objects (space, job specs).
        chunksize = max(1, math.ceil(len(payloads) / (self.jobs * 4)))
        outcomes = list(self._pool().map(_run_in_worker, payloads, chunksize=chunksize))
        for outcome in outcomes:
            self._recorder.record(outcome)
        return outcomes

    def map_tasks(self, fn, items: Sequence) -> List:
        """Run ``fn`` over ``items`` on the worker pool, order preserved."""
        if not items:
            return []
        return list(self._pool().map(fn, items))

    def signature(self) -> str:
        sigma = (
            self.noise_sigma
            if self.noise_sigma is not None
            else SparkSimulator(self.cluster).noise_sigma
        )
        return f"sparksim|{self.cluster!r}|sigma={sigma!r}"

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
