"""Execution requests and their outcomes.

The engine's unit of work is the paper's unit of cost: one substrate
execution of a (program, configuration, datasize) triple.
:class:`ExecRequest` carries the compiled :class:`JobSpec` (program and
datasize in one object, custom workloads included) plus the
:class:`Configuration` to run it under.

An outcome is either an :class:`ExecResult` wrapping the simulator's
:class:`RunResult` together with execution metadata (wall time, retry
attempts, cache provenance), or a typed :class:`FailedRun` when the
substrate raised on every attempt.  Batches never raise because one
request failed — callers that need all-success semantics use
:func:`require_success` / :class:`ExecutionError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.common.space import Configuration
from repro.sparksim.dag import JobSpec
from repro.sparksim.simulator import RunResult


@dataclass(frozen=True)
class ExecRequest:
    """One substrate execution: run ``job``'s program under ``config``."""

    job: JobSpec
    config: Configuration

    @property
    def program(self) -> str:
        return self.job.program

    @property
    def datasize_bytes(self) -> float:
        return self.job.datasize_bytes


@dataclass(frozen=True)
class ExecResult:
    """A successful execution plus how the engine obtained it."""

    run: RunResult
    wall_seconds: float
    attempts: int
    backend: str
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return True

    @property
    def seconds(self) -> float:
        """Simulated execution time (the measurement itself)."""
        return self.run.seconds


@dataclass(frozen=True)
class FailedRun:
    """A request whose every attempt raised — the batch survives it."""

    program: str
    datasize_bytes: float
    error: str
    attempts: int
    backend: str
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return False


ExecOutcome = Union[ExecResult, FailedRun]


class ExecutionError(RuntimeError):
    """Raised by callers that need every request in a batch to succeed."""

    def __init__(self, failures: Sequence[FailedRun]):
        self.failures = tuple(failures)
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)} substrate run(s) failed; first: "
            f"{first.program}: {first.error} (after {first.attempts} attempts)"
        )


def require_success(outcomes: Sequence[ExecOutcome]) -> List[RunResult]:
    """Unwrap a batch into :class:`RunResult`\\ s, raising on any failure."""
    failures = [o for o in outcomes if isinstance(o, FailedRun)]
    if failures:
        raise ExecutionError(failures)
    return [o.run for o in outcomes]  # type: ignore[union-attr]
