"""Structured execution accounting.

Every request flowing through a backend leaves a record; the aggregate
:class:`EngineStats` is an immutable snapshot surfaced through
:class:`~repro.core.tuner.TuningReport` and the CLI — the reproduction's
analogue of Table 3's "Collecting" column, extended with the cache and
parallelism effects the engine adds on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.telemetry import events as tele
from repro.telemetry.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.request import ExecOutcome


@dataclass(frozen=True)
class EngineStats:
    """Aggregate accounting of substrate executions.

    Attributes
    ----------
    runs:
        Requests answered (successes and failures, hits and misses).
    failures:
        Requests that exhausted their retry budget.
    cache_hits / cache_misses:
        Requests answered from / past a :class:`CachedBackend`.
        Both stay zero on uncached backends.
    retries:
        Extra attempts beyond the first, summed over all requests.
    wall_seconds:
        Real time spent executing (cache hits contribute ~0).
    simulated_seconds:
        Simulated cluster time of the successful runs — what the
        collection *would* have cost on real hardware.
    backends:
        Sorted identifiers of every backend that answered a request.
    """

    runs: int = 0
    failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    simulated_seconds: float = 0.0
    backends: Tuple[str, ...] = ()

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when uncached)."""
        return self.cache_hits / self.runs if self.runs else 0.0

    @property
    def simulated_hours(self) -> float:
        return self.simulated_seconds / 3600.0

    def merged(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            runs=self.runs + other.runs,
            failures=self.failures + other.failures,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            retries=self.retries + other.retries,
            wall_seconds=self.wall_seconds + other.wall_seconds,
            simulated_seconds=self.simulated_seconds + other.simulated_seconds,
            backends=tuple(sorted(set(self.backends) | set(other.backends))),
        )

    def summary(self) -> str:
        """One-line human rendering for CLI output."""
        parts = [f"{self.runs} runs"]
        if self.cache_hits or self.cache_misses:
            parts.append(f"{self.cache_hits} cache hits ({self.hit_rate * 100:.0f}%)")
        if self.failures:
            parts.append(f"{self.failures} failed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        parts.append(f"{self.wall_seconds:.2f}s wall")
        parts.append(f"{self.simulated_hours:.1f} simulated cluster-hours")
        backends = ",".join(self.backends) or "-"
        return f"engine[{backends}]: " + ", ".join(parts)


class StatsRecorder:
    """Mutable accumulator backing a backend's :attr:`stats` snapshot.

    Also the engine's telemetry tap: every recorded outcome is mirrored
    as an ``engine.request`` event plus request metrics (count, retries,
    wall time, queue wait) when telemetry is on.  A decorating backend
    (the cache) sets :attr:`telemetry` to ``False`` on its inner
    backend's recorder so each request is reported exactly once.
    """

    def __init__(self) -> None:
        self._stats = EngineStats()
        #: When False the recorder updates stats only (no events/metrics).
        self.telemetry = True

    def record(
        self, outcome: "ExecOutcome", queue_wait: Optional[float] = None
    ) -> None:
        from repro.engine.request import ExecResult

        s = self._stats
        success = isinstance(outcome, ExecResult)
        if self.telemetry:
            self._record_telemetry(outcome, success, queue_wait)
        self._stats = EngineStats(
            runs=s.runs + 1,
            failures=s.failures + (0 if success else 1),
            cache_hits=s.cache_hits + (1 if success and outcome.cache_hit else 0),
            cache_misses=s.cache_misses,
            retries=s.retries + max(outcome.attempts - 1, 0),
            wall_seconds=s.wall_seconds + outcome.wall_seconds,
            simulated_seconds=s.simulated_seconds
            + (outcome.run.seconds if success else 0.0),
            backends=s.backends
            if outcome.backend in s.backends
            else tuple(sorted((*s.backends, outcome.backend))),
        )

    def _record_telemetry(
        self, outcome: "ExecOutcome", success: bool, queue_wait: Optional[float]
    ) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter("engine.requests").labels(
                backend=outcome.backend
            ).inc()
            if not success:
                registry.counter("engine.failures").inc()
            if outcome.attempts > 1:
                registry.counter("engine.retries").inc(outcome.attempts - 1)
            cache_hit = success and outcome.cache_hit
            if cache_hit:
                registry.counter("engine.cache.hits").inc()
            else:
                registry.timer("engine.wall_seconds").observe(outcome.wall_seconds)
            if queue_wait is not None:
                registry.timer("engine.queue_wait_seconds").observe(queue_wait)
        if tele.enabled():
            fields = {
                "backend": outcome.backend,
                "program": outcome.program if not success else outcome.run.program,
                "ok": success,
                "attempts": outcome.attempts,
                "wall_seconds": outcome.wall_seconds,
                "cache_hit": success and outcome.cache_hit,
            }
            if queue_wait is not None:
                fields["queue_wait"] = queue_wait
            if success:
                fields["seconds"] = outcome.run.seconds
            tele.event("engine.request", **fields)

    def record_miss(self) -> None:
        """Count one cache miss (paired with the inner outcome's record)."""
        if self.telemetry:
            registry = get_registry()
            if registry.enabled:
                registry.counter("engine.cache.misses").inc()
        s = self._stats
        self._stats = EngineStats(
            runs=s.runs,
            failures=s.failures,
            cache_hits=s.cache_hits,
            cache_misses=s.cache_misses + 1,
            retries=s.retries,
            wall_seconds=s.wall_seconds,
            simulated_seconds=s.simulated_seconds,
            backends=s.backends,
        )

    def snapshot(self) -> EngineStats:
        return self._stats
