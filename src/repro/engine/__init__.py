"""The execution engine: substrate runs as a first-class subsystem.

The collecting phase dominates DAC's tuning cost (Table 3: hours of
cluster time against minutes of modeling and search), and every layer of
the seed reproduction — :class:`~repro.core.collecting.Collector`,
:class:`~repro.core.session.DacSession`,
:class:`~repro.core.tuner.DacTuner`, the experiment harness, the CLI —
used to call :meth:`SparkSimulator.run` inline, one pair at a time, with
no reuse across callers.  This package turns that path into a pluggable
subsystem:

* :class:`ExecutionBackend` — one batch interface
  (``submit(requests) -> outcomes``) behind which the substrate lives;
* :class:`InProcessBackend` — sequential, in-process (seed behaviour);
* :class:`ProcessPoolBackend` — multiprocessing fan-out, deterministic
  because the simulator seeds from the request triple;
* :class:`CachedBackend` — in-memory + on-disk memoization keyed by the
  canonical triple hash, shared across sessions and experiments;
* :class:`EngineStats` — structured per-run accounting (wall time,
  retries, cache hits, backends) surfaced through
  :class:`~repro.core.tuner.TuningReport` and the CLI;
* :class:`FailedRun` — the typed outcome of a request that exhausted
  its retry budget, so one bad run never poisons a batch.
"""

from repro.engine.backends import (
    DEFAULT_BACKOFF_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    ExecutionBackend,
    InProcessBackend,
    ProcessPoolBackend,
)
from repro.engine.cache import CACHE_FORMAT, CachedBackend, request_key
from repro.engine.request import (
    ExecOutcome,
    ExecRequest,
    ExecResult,
    ExecutionError,
    FailedRun,
    require_success,
)
from repro.engine.stats import EngineStats

__all__ = [
    "CACHE_FORMAT",
    "CachedBackend",
    "DEFAULT_BACKOFF_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "EngineStats",
    "ExecOutcome",
    "ExecRequest",
    "ExecResult",
    "ExecutionBackend",
    "ExecutionError",
    "FailedRun",
    "InProcessBackend",
    "ProcessPoolBackend",
    "request_key",
    "require_success",
]
