"""Result caching: stop re-simulating identical triples.

:class:`CachedBackend` decorates any :class:`ExecutionBackend` with an
in-memory and (optionally) on-disk store keyed by the canonical hash of
the request triple *and* the inner backend's substrate signature — the
same cluster running the same program on the same datasize under the
same configuration always reproduces the same measurement, so the
first execution can answer every later identical request, across
sessions, experiments and benchmarks.

Keys hash the configuration's canonical *values* (not its [0,1]
encoding, which clips out-of-range defaults) plus the job's full stage
list, so distinct programs or distinct job compilations never alias.
Failures are never cached: a :class:`FailedRun` is returned to the
caller but the next identical request goes back to the substrate.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.backends import ExecutionBackend
from repro.engine.request import ExecOutcome, ExecRequest, ExecResult
from repro.engine.stats import EngineStats
from repro.sparksim.simulator import RunResult
from repro.store import blobfmt
from repro.telemetry.metrics import get_registry

#: First bytes of legacy on-disk cache entries (plain tagged pickle).
#: Still readable; new entries are written as checksummed
#: :mod:`repro.store.blobfmt` containers instead, so a torn or corrupt
#: entry is detected by digest rather than by pickle happening to blow
#: up.  Anything that is neither format reads as a miss and is evicted.
CACHE_FORMAT = b"repro-cache/1\n"

#: ``kind`` tag of blob-container cache entries.
_CACHE_BLOB_KIND = "cache_entry"


def request_key(request: ExecRequest, substrate_signature: str) -> str:
    """Canonical cache key of a (substrate, program, config, datasize) tuple."""
    digest = hashlib.blake2b(digest_size=16)
    parts = [
        substrate_signature,
        request.job.program,
        repr(request.job.datasize_bytes),
        repr(request.job.stages),
    ]
    config = request.config
    for name in config.space.names:
        parts.append(name)
        parts.append(repr(config[name]))
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


class CachedBackend(ExecutionBackend):
    """Memoizing decorator around another backend.

    Parameters
    ----------
    inner:
        The backend that answers cache misses.
    directory:
        Optional on-disk store (one pickle per key).  Sharing a
        directory across processes/sessions is safe: writes go through
        a same-directory temp file + atomic rename, and unreadable
        entries are treated as misses.
    """

    name = "cached"

    def __init__(
        self,
        inner: ExecutionBackend,
        directory: Optional[Union[str, Path]] = None,
    ):
        super().__init__()
        self.inner = inner
        # Each request through this cache is telemetered exactly once,
        # by this recorder; mute the inner backend's tap.
        inner._recorder.telemetry = False
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, RunResult] = {}
        self._signature = inner.signature()

    # -- protocol -------------------------------------------------------
    def signature(self) -> str:
        return self._signature

    @property
    def supports_parallel_tasks(self) -> bool:
        return self.inner.supports_parallel_tasks

    def map_tasks(self, fn, items):
        # Generic compute is not request-shaped; pass it straight down.
        return self.inner.map_tasks(fn, items)

    def submit(self, requests: Sequence[ExecRequest]) -> List[ExecOutcome]:
        registry = get_registry()
        outcomes: List[Optional[ExecOutcome]] = [None] * len(requests)
        misses: List[Tuple[int, str, ExecRequest]] = []
        for i, request in enumerate(requests):
            key = request_key(request, self._signature)
            if registry.enabled:
                lookup_start = time.perf_counter()
                run = self._lookup(key)
                registry.timer("engine.cache.lookup_seconds").labels(
                    result="hit" if run is not None else "miss"
                ).observe(time.perf_counter() - lookup_start)
            else:
                run = self._lookup(key)
            if run is not None:
                outcomes[i] = ExecResult(
                    run=run,
                    wall_seconds=0.0,
                    attempts=0,
                    backend=self.name,
                    cache_hit=True,
                )
            else:
                misses.append((i, key, request))

        if misses:
            inner_outcomes = self.inner.submit([req for _, _, req in misses])
            for (i, key, _), outcome in zip(misses, inner_outcomes):
                if isinstance(outcome, ExecResult):
                    self._store(key, outcome.run)
                outcomes[i] = outcome
                self._recorder.record_miss()

        for outcome in outcomes:
            assert outcome is not None
            self._recorder.record(outcome)
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        self.inner.close()

    # -- introspection --------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        """Requests through this cache (hits + misses; inner wall times
        show up via the recorded miss outcomes)."""
        return self._recorder.snapshot()

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer, if any, survives)."""
        self._memory.clear()

    # -- storage layers -------------------------------------------------
    def _lookup(self, key: str) -> Optional[RunResult]:
        run = self._memory.get(key)
        if run is not None:
            return run
        if self.directory is None:
            return None
        path = self.directory / f"{key}.pkl"
        try:
            blob = path.read_bytes()
        except OSError:  # absent (or unreadable): miss
            return None
        if blob.startswith(blobfmt.MAGIC):
            try:
                header, sections = blobfmt.decode_sections(blob, verify=True)
                if header.get("kind") != _CACHE_BLOB_KIND:
                    raise blobfmt.BlobError("not a cache entry")
                run = pickle.loads(sections["pickle"].tobytes())
            except Exception:  # truncated/corrupt entry: miss + overwrite
                self._evict(path)
                return None
        elif blob.startswith(CACHE_FORMAT):  # legacy tagged-pickle entry
            try:
                run = pickle.loads(blob[len(CACHE_FORMAT) :])
            except Exception:  # truncated/corrupt entry: miss + overwrite
                self._evict(path)
                return None
        else:
            self._evict(path)  # stale format or foreign file: rewrite it
            return None
        if not isinstance(run, RunResult):
            self._evict(path)
            return None
        self._memory[key] = run
        return run

    @staticmethod
    def _evict(path: Path) -> None:
        """Best-effort removal of a bad entry so the rewrite is clean."""
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    def _store(self, key: str, run: RunResult) -> None:
        self._memory[key] = run
        if self.directory is None:
            return
        path = self.directory / f"{key}.pkl"
        tmp = self.directory / f".{key}.{os.getpid()}.tmp"
        pickled = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
        blob = blobfmt.encode_sections(
            {"pickle": np.frombuffer(pickled, dtype=np.uint8)},
            kind=_CACHE_BLOB_KIND,
        )
        try:
            with tmp.open("wb") as handle:
                handle.write(blob)
            tmp.replace(path)
        except OSError:  # read-only/full disk: memory layer still works
            tmp.unlink(missing_ok=True)
