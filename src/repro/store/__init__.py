"""Persistent, crash-safe storage for tuning runs.

The serving substrate's durability layer: a directory-rooted,
content-addressed experiment store holding every expensive artifact of
the DAC pipeline (training sets, fitted models, GA populations,
reports, telemetry event logs), each written atomically with a
schema-versioned, digest-verified container so partially-written
artifacts are detected and treated as absent.

* :mod:`repro.store.artifacts` — the self-verifying artifact file
  format (atomic tmp-file + rename, header + SHA-256 digest);
* :mod:`repro.store.blobfmt` — the columnar blob container nested
  inside artifacts: aligned, per-section-checksummed arrays that
  decode as zero-copy views or memory-map straight from the file;
* :mod:`repro.store.matrixbuilder` — streaming row accumulation with
  spill-to-disk for larger-than-RAM training matrices;
* :mod:`repro.store.runstore` — :class:`RunStore`, the
  content-addressed object store + append-only index + job records,
  with codec-dispatched typed reads (``mode="mmap"`` for zero-copy)
  and :meth:`RunStore.gc`.

:mod:`repro.service` builds the scheduler and checkpointing job runner
on top of this package.
"""

from repro.store.artifacts import (
    ArtifactError,
    payload_digest,
    read_artifact,
    read_artifact_header,
    write_artifact,
)
from repro.store.blobfmt import (
    BlobError,
    decode_sections,
    encode_sections,
    map_sections,
)
from repro.store.matrixbuilder import MatrixBuilder
from repro.store.runstore import (
    KIND_SCHEMAS,
    STORE_SCHEMA,
    RunStore,
    StoreError,
    report_fingerprint,
)

__all__ = [
    "ArtifactError",
    "BlobError",
    "KIND_SCHEMAS",
    "MatrixBuilder",
    "RunStore",
    "STORE_SCHEMA",
    "StoreError",
    "decode_sections",
    "encode_sections",
    "map_sections",
    "payload_digest",
    "read_artifact",
    "read_artifact_header",
    "report_fingerprint",
    "write_artifact",
]
