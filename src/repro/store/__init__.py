"""Persistent, crash-safe storage for tuning runs.

The serving substrate's durability layer: a directory-rooted,
content-addressed experiment store holding every expensive artifact of
the DAC pipeline (training sets, fitted models, GA populations,
reports, telemetry event logs), each written atomically with a
schema-versioned, digest-verified container so partially-written
artifacts are detected and treated as absent.

* :mod:`repro.store.artifacts` — the self-verifying artifact file
  format (atomic tmp-file + rename, header + SHA-256 digest);
* :mod:`repro.store.runstore` — :class:`RunStore`, the
  content-addressed object store + append-only index + job records.

:mod:`repro.service` builds the scheduler and checkpointing job runner
on top of this package.
"""

from repro.store.artifacts import (
    ArtifactError,
    payload_digest,
    read_artifact,
    write_artifact,
)
from repro.store.runstore import (
    KIND_SCHEMAS,
    STORE_SCHEMA,
    RunStore,
    StoreError,
    report_fingerprint,
)

__all__ = [
    "ArtifactError",
    "KIND_SCHEMAS",
    "RunStore",
    "STORE_SCHEMA",
    "StoreError",
    "payload_digest",
    "read_artifact",
    "report_fingerprint",
    "write_artifact",
]
