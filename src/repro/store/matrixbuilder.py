"""Bounded-memory accumulation of a row-chunked matrix.

The collector produces the training matrix one batch of rows at a
time; for large collections the assembled matrix should never need to
be resident as Python objects *or* as one private heap block.
:class:`MatrixBuilder` accepts row chunks, keeps them in RAM up to a
budget, then spills everything to an anonymous temp file and keeps
appending there.  :meth:`finalize` returns either an ordinary array
(small case) or a read-only :class:`numpy.memmap` over the spill file
(large case) — callers index it the same way either way, and the OS
pages the spilled data in and out as touched.

The spill file is unlinked immediately after the memmap opens (POSIX
keeps it alive while mapped), so crashed builders leave no litter on
any OS where unlink-while-open works; elsewhere the temp dir's normal
cleanup applies.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional, Union

import numpy as np

#: Default RAM budget before chunks spill to disk.
DEFAULT_SPILL_BYTES = 64 << 20


class MatrixBuilder:
    """Append (k, n_cols) float64 row chunks; finalize to one matrix."""

    def __init__(
        self,
        n_cols: int,
        spill_bytes: int = DEFAULT_SPILL_BYTES,
        spill_dir: Optional[str] = None,
    ):
        if n_cols < 1:
            raise ValueError("n_cols must be >= 1")
        self.n_cols = int(n_cols)
        self.spill_bytes = int(spill_bytes)
        self.spill_dir = spill_dir
        self.n_rows = 0
        self._chunks: List[np.ndarray] = []
        self._buffered_bytes = 0
        self._spill = None  # open binary file handle once spilled
        self._finalized = False

    @property
    def spilled(self) -> bool:
        return self._spill is not None

    def append(self, rows: np.ndarray) -> None:
        """Add a (k, n_cols) chunk of float64 rows."""
        if self._finalized:
            raise RuntimeError("builder is finalized")
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.n_cols:
            raise ValueError(f"expected (k, {self.n_cols}) chunk, got {rows.shape}")
        if len(rows) == 0:
            return
        self.n_rows += len(rows)
        if self._spill is not None:
            self._spill.write(rows.tobytes())
            return
        self._chunks.append(rows)
        self._buffered_bytes += rows.nbytes
        if self._buffered_bytes > self.spill_bytes:
            self._spill_now()

    def _spill_now(self) -> None:
        self._spill = tempfile.NamedTemporaryFile(
            prefix="repro-matrix-", suffix=".spill", dir=self.spill_dir, delete=False
        )
        for chunk in self._chunks:
            self._spill.write(chunk.tobytes())
        self._chunks = []
        self._buffered_bytes = 0

    def finalize(self) -> np.ndarray:
        """The assembled (n_rows, n_cols) matrix, read-only.

        RAM-resident builds return a normal array; spilled builds a
        read-only memmap over the (already unlinked) spill file.
        """
        if self._finalized:
            raise RuntimeError("builder is finalized")
        self._finalized = True
        if self._spill is None:
            if not self._chunks:
                matrix = np.empty((0, self.n_cols), dtype=np.float64)
            else:
                matrix = np.vstack(self._chunks)
            self._chunks = []
            matrix.setflags(write=False)
            return matrix
        self._spill.flush()
        name = self._spill.name
        self._spill.close()
        self._spill = None
        matrix = np.memmap(
            name, dtype=np.float64, mode="r", shape=(self.n_rows, self.n_cols)
        )
        try:
            os.unlink(name)  # mapping keeps the data alive on POSIX
        except OSError:
            pass
        return matrix

    def close(self) -> None:
        """Discard buffered state (safe to call after finalize)."""
        self._chunks = []
        self._buffered_bytes = 0
        if self._spill is not None:
            name = self._spill.name
            try:
                self._spill.close()
            finally:
                self._spill = None
                try:
                    os.unlink(name)
                except OSError:
                    pass
