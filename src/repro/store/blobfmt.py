"""The columnar blob format: zero-copy array sections behind one header.

Training sets and flattened forests are, at heart, a handful of numpy
arrays.  Pickling them costs a full deserialize *per reader process*
and a private heap copy of every byte; CSV costs a parse on top.  This
module defines the binary container both now share::

    RPRBLOB1                      8-byte magic
    <u64 little-endian>           header length in bytes
    {"version": 1, ...}           header JSON (kind, meta, sections)
    ... 64-byte aligned ...
    <section 0 bytes>             raw C-order little-endian array data
    ... 64-byte aligned ...
    <section 1 bytes>
    ...

The header's ``sections`` list records, per array: name, numpy dtype
string (always little-endian), shape, byte offset *relative to the
aligned data start*, byte length, and an independent SHA-256 — so a
reader can verify or map any one section without touching the rest.

Three access paths share the layout:

* :func:`encode_sections` — arrays -> ``bytes`` (for the artifact
  container / content-addressed store);
* :func:`decode_sections` — ``bytes`` -> read-only array views over the
  buffer (zero copy; ``verify=True`` checks per-section digests);
* :func:`map_sections` — file path -> read-only :class:`numpy.memmap`
  views, so N reader processes share one page-cache copy of the data
  and "loading" a 25 MB forest touches only the header page.

Alignment is 64 bytes so every section start is cache-line- (and
therefore element-) aligned regardless of preceding section sizes.
All multi-byte data is little-endian on disk; big-endian inputs are
byte-swapped at encode time and every documented platform reads the
stored bytes as native.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

#: First bytes of every blob; anything else is not this format.
MAGIC = b"RPRBLOB1"

#: Layout version of the container itself (header framing + alignment).
BLOB_VERSION = 1

#: Section starts are padded to this boundary (cache line).
ALIGNMENT = 64

#: Sanity bound on header size — a real header is a few KB; anything
#: claiming more is corruption, not data.
_MAX_HEADER_BYTES = 16 << 20

_PREFIX = struct.Struct("<Q")


class BlobError(Exception):
    """A buffer or file that is not a complete, intact blob.

    Raised on bad magic, truncated headers or sections, digest
    mismatches, and malformed section descriptors alike — store-level
    callers treat all of them as "the artifact is absent".
    """


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _canonical(array: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian view/copy of ``array`` for encoding."""
    array = np.asarray(array)
    if array.dtype.hasobject:
        raise BlobError("object arrays cannot be stored as sections")
    dtype = array.dtype
    if dtype.byteorder == ">":
        dtype = dtype.newbyteorder("<")
    return np.ascontiguousarray(array, dtype=dtype)


def _wire_dtype(dtype: np.dtype) -> str:
    """The dtype string written to the header (explicitly little-endian)."""
    if dtype.byteorder == "=" and dtype.itemsize > 1:
        dtype = dtype.newbyteorder("<")
    return dtype.str


def encode_sections(
    sections: Mapping[str, np.ndarray],
    meta: Optional[Mapping[str, object]] = None,
    kind: str = "blob",
) -> bytes:
    """Serialize named arrays into one self-describing blob."""
    arrays = {str(name): _canonical(arr) for name, arr in sections.items()}
    descriptors = []
    offset = 0  # relative to the aligned data start
    for name, arr in arrays.items():
        offset = _align(offset)
        descriptors.append(
            {
                "name": name,
                "dtype": _wire_dtype(arr.dtype),
                "shape": [int(s) for s in arr.shape],
                "offset": offset,
                "nbytes": int(arr.nbytes),
                "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
            }
        )
        offset += int(arr.nbytes)
    header = {
        "version": BLOB_VERSION,
        "kind": str(kind),
        "meta": dict(meta) if meta else {},
        "sections": descriptors,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(len(MAGIC) + _PREFIX.size + len(header_bytes))
    blob = bytearray(data_start + offset)
    blob[: len(MAGIC)] = MAGIC
    _PREFIX.pack_into(blob, len(MAGIC), len(header_bytes))
    blob[len(MAGIC) + _PREFIX.size : len(MAGIC) + _PREFIX.size + len(header_bytes)] = (
        header_bytes
    )
    for desc, arr in zip(descriptors, arrays.values()):
        start = data_start + desc["offset"]
        blob[start : start + desc["nbytes"]] = arr.tobytes()
    return bytes(blob)


def _parse_header(prefix: bytes, total_size: int) -> Tuple[Dict[str, object], int]:
    """Validate framing, return ``(header, data_start)``.

    ``prefix`` must hold at least magic + length + header JSON;
    ``total_size`` bounds section extents.
    """
    if len(prefix) < len(MAGIC) + _PREFIX.size:
        raise BlobError("truncated: no room for magic + header length")
    if prefix[: len(MAGIC)] != MAGIC:
        raise BlobError("not a blob (bad magic)")
    (header_len,) = _PREFIX.unpack_from(prefix, len(MAGIC))
    if header_len > _MAX_HEADER_BYTES:
        raise BlobError(f"implausible header length {header_len}")
    header_end = len(MAGIC) + _PREFIX.size + header_len
    if header_end > len(prefix):
        raise BlobError("truncated header")
    try:
        header = json.loads(prefix[len(MAGIC) + _PREFIX.size : header_end])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BlobError(f"bad header JSON ({exc})") from exc
    if not isinstance(header, dict) or header.get("version") != BLOB_VERSION:
        raise BlobError(f"unsupported blob version {header.get('version')!r}")
    if not isinstance(header.get("sections"), list):
        raise BlobError("header has no sections list")
    data_start = _align(header_end)
    for desc in header["sections"]:
        if not isinstance(desc, dict):
            raise BlobError("malformed section descriptor")
        try:
            dtype = np.dtype(str(desc["dtype"]))
            shape = tuple(int(s) for s in desc["shape"])
            offset = int(desc["offset"])
            nbytes = int(desc["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise BlobError(f"malformed section descriptor ({exc})") from exc
        if dtype.hasobject:
            raise BlobError("object dtype in section descriptor")
        if any(s < 0 for s in shape) or offset < 0 or nbytes < 0:
            raise BlobError("negative section extent")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count * dtype.itemsize != nbytes:
            raise BlobError(
                f"section {desc.get('name')!r}: shape/dtype disagree with nbytes"
            )
        if data_start + offset + nbytes > total_size:
            raise BlobError(f"section {desc.get('name')!r}: extends past blob end")
    return header, data_start


def _verify_section(desc: Mapping[str, object], data: np.ndarray) -> None:
    digest = hashlib.sha256(data.tobytes()).hexdigest()
    if digest != desc.get("sha256"):
        raise BlobError(f"section {desc.get('name')!r}: digest mismatch")


def decode_sections(
    blob: Union[bytes, bytearray, memoryview],
    verify: bool = True,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Parse a blob into ``(header, {name: array})``.

    Arrays are read-only zero-copy views over ``blob`` (the buffer is
    kept alive by the views).  ``verify`` checks each section's SHA-256
    — skip it only when an outer layer already authenticated the bytes.
    """
    blob = bytes(blob) if not isinstance(blob, bytes) else blob
    header, data_start = _parse_header(blob, len(blob))
    arrays: Dict[str, np.ndarray] = {}
    for desc in header["sections"]:
        dtype = np.dtype(str(desc["dtype"]))
        shape = tuple(int(s) for s in desc["shape"])
        start = data_start + int(desc["offset"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        array = np.frombuffer(blob, dtype=dtype, count=count, offset=start)
        array = array.reshape(shape)
        if verify:
            _verify_section(desc, array)
        arrays[str(desc["name"])] = array
    return header, arrays


def map_sections(
    path: Union[str, Path],
    offset: int = 0,
    length: Optional[int] = None,
    verify: bool = False,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Memory-map a blob stored at byte ``offset`` inside ``path``.

    Returns ``(header, {name: read-only memmap view})``.  Only the
    header bytes are read eagerly; section data stays untouched until
    a consumer gathers from it, and the pages it does touch live in the
    shared page cache — N reader processes cost one resident copy.

    ``length`` bounds the blob (defaults to rest-of-file); ``verify``
    forces a full per-section digest check, which reads everything and
    therefore forfeits laziness — the store uses it only on the
    copying path.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise BlobError(f"{path}: unreadable ({exc})") from exc
    if length is None:
        length = size - offset
    if offset < 0 or length < 0 or offset + length > size:
        raise BlobError(f"{path}: blob extent outside file")
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            prefix = handle.read(min(length, len(MAGIC) + _PREFIX.size))
            if len(prefix) >= len(MAGIC) + _PREFIX.size:
                (header_len,) = _PREFIX.unpack_from(prefix, len(MAGIC))
                want = min(length, len(MAGIC) + _PREFIX.size + min(header_len, _MAX_HEADER_BYTES))
                prefix += handle.read(max(0, want - len(prefix)))
    except OSError as exc:
        raise BlobError(f"{path}: unreadable ({exc})") from exc
    header, data_start = _parse_header(prefix, length)
    arrays: Dict[str, np.ndarray] = {}
    for desc in header["sections"]:
        dtype = np.dtype(str(desc["dtype"]))
        shape = tuple(int(s) for s in desc["shape"])
        if int(np.prod(shape, dtype=np.int64) if shape else 1) == 0:
            empty = np.empty(shape, dtype=dtype)
            empty.setflags(write=False)  # match the mapped views' contract
            arrays[str(desc["name"])] = empty
            continue
        view = np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=offset + data_start + int(desc["offset"]),
            shape=shape,
            order="C",
        )
        if verify:
            _verify_section(desc, np.asarray(view))
        arrays[str(desc["name"])] = view
    return header, arrays
