"""The run store: durable, versioned home of every expensive artifact.

DAC's pipeline costs hours of (simulated) cluster time before the GA
ever runs; the store makes each expensive intermediate — training sets,
fitted :class:`~repro.models.hierarchical.HierarchicalModel`\\ s, GA
populations, :class:`~repro.core.tuner.TuningReport`\\ s — a durable,
content-addressed object that survives crashes and is shared across
sessions and jobs.

On disk::

    <root>/
      meta.json            store identity + schema version
      index.jsonl          append-only key -> digest index (latest wins)
      objects/ab/<sha256>  content-addressed artifact blobs
      jobs/<job_id>.json   job records (atomic rewrite per update)
      events/<id>.jsonl    per-job telemetry event logs (append across
                           sessions, readable by ``repro trace``)
      cache/               the engine's on-disk result cache
      leases/              per-job worker leases + fencing-token ledger
                           (:mod:`repro.service.lease`)

Crash safety is layered: blobs are self-verifying artifact containers
written via tmp-file + atomic rename (:mod:`repro.store.artifacts`);
the index is append-only JSONL whose torn tail lines are skipped on
read; job records are whole-file atomic replaces.  A reader therefore
always sees either a complete prior version of anything or nothing —
never a torn object.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.store.artifacts import (
    ArtifactError,
    payload_digest,
    read_artifact,
    write_artifact,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.collecting import TrainingSet
    from repro.core.ga import GaState
    from repro.core.tuner import TuningReport
    from repro.models.hierarchical import HierarchicalModel

#: Store-level layout version (bumped only on incompatible layout change).
STORE_SCHEMA = 1

#: Payload schema per artifact kind; bumping one invalidates only that
#: kind's stored entries (they read back as absent and are rewritten).
KIND_SCHEMAS = {
    "training_set": 1,
    "model": 1,
    "ga_state": 1,
    "report": 1,
    "json": 1,
    "bytes": 1,
}


class StoreError(Exception):
    """The store directory is unusable (wrong schema, not a store)."""


class RunStore:
    """A crash-safe experiment store rooted at one directory."""

    def __init__(
        self,
        root: Union[str, Path],
        create: bool = True,
        fsync: bool = False,
    ):
        self.root = Path(root)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._index: Optional[Dict[str, Dict[str, object]]] = None

        meta_path = self.root / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(f"{self.root}: unreadable meta.json") from exc
            if meta.get("store_schema") != STORE_SCHEMA:
                raise StoreError(
                    f"{self.root}: store schema {meta.get('store_schema')!r} "
                    f"!= {STORE_SCHEMA}"
                )
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_atomic(
                meta_path,
                json.dumps(
                    {"store_schema": STORE_SCHEMA, "created": time.time()},
                    sort_keys=True,
                ).encode("utf-8"),
            )
        else:
            raise StoreError(f"{self.root}: not a run store")
        for sub in ("objects", "jobs", "events", "cache", "leases", "health"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------
    @property
    def cache_dir(self) -> Path:
        """Directory for the engine's :class:`CachedBackend` disk cache."""
        return self.root / "cache"

    @property
    def lease_dir(self) -> Path:
        """Directory for per-job worker leases (:mod:`repro.service.lease`)."""
        return self.root / "leases"

    @property
    def health_dir(self) -> Path:
        """Directory for per-worker heartbeat files (:mod:`repro.service.health`)."""
        return self.root / "health"

    def event_log_path(self, job_id: str) -> Path:
        """The per-job JSONL telemetry event log (append across sessions)."""
        return self.root / "events" / f"{job_id}.jsonl"

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def _index_path(self) -> Path:
        return self.root / "index.jsonl"

    # -- low-level atomic file write ------------------------------------
    def _write_atomic(self, path: Path, payload: bytes) -> None:
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        try:
            with tmp.open("wb") as handle:
                handle.write(payload)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            tmp.replace(path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    # -- the index ------------------------------------------------------
    def _load_index(self) -> Dict[str, Dict[str, object]]:
        if self._index is None:
            index: Dict[str, Dict[str, object]] = {}
            path = self._index_path()
            if path.exists():
                with path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            entry = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail line: skip
                        if isinstance(entry, dict) and "key" in entry:
                            index[str(entry["key"])] = entry
            self._index = index
        return self._index

    def refresh(self) -> None:
        """Drop cached index/job state so the next read hits disk.

        Call after another process may have written to the store (the
        resume path does).
        """
        with self._lock:
            self._index = None

    def entry(self, key: str) -> Optional[Dict[str, object]]:
        """The latest index entry for ``key`` (no blob verification)."""
        with self._lock:
            return self._load_index().get(key)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._load_index())

    # -- artifact put/get -----------------------------------------------
    def put_bytes(
        self, key: str, payload: bytes, kind: str = "bytes", codec: str = "raw"
    ) -> str:
        """Store ``payload`` under ``key``; returns its content digest.

        The blob lands first (atomic rename), the index line second —
        a crash between the two leaves an unreferenced blob, never a
        dangling reference.
        """
        schema = KIND_SCHEMAS[kind]
        digest = payload_digest(payload)
        blob_path = self._object_path(digest)
        if not blob_path.exists():
            blob_path.parent.mkdir(parents=True, exist_ok=True)
            write_artifact(
                blob_path, payload, kind=kind, schema=schema, codec=codec,
                fsync=self.fsync,
            )
        entry = {
            "key": key,
            "kind": kind,
            "schema": schema,
            "codec": codec,
            "digest": digest,
            "ts": time.time(),
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            with self._index_path().open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            self._load_index()[key] = entry
        return digest

    def get_bytes(self, key: str, kind: str = "bytes") -> Optional[bytes]:
        """The latest intact payload for ``key``, or ``None``.

        ``None`` covers every defect uniformly: unknown key, kind or
        schema mismatch (stale format), missing blob, torn or corrupt
        blob — a partially-written artifact is treated as absent.
        """
        entry = self.entry(key)
        if entry is None or entry.get("kind") != kind:
            return None
        if entry.get("schema") != KIND_SCHEMAS[kind]:
            return None
        try:
            header, payload = read_artifact(self._object_path(str(entry["digest"])))
        except ArtifactError:
            return None
        if header.get("kind") != kind or header.get("schema") != KIND_SCHEMAS[kind]:
            return None
        return payload

    # -- typed codecs ---------------------------------------------------
    def put_object(self, key: str, obj: object, kind: str) -> str:
        return self.put_bytes(
            key,
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
            kind=kind,
            codec="pickle",
        )

    def get_object(self, key: str, kind: str) -> Optional[object]:
        payload = self.get_bytes(key, kind=kind)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # corrupt-but-digest-valid should be impossible;
            return None    # treat defensively as absent all the same

    def put_json(self, key: str, obj: object) -> str:
        return self.put_bytes(
            key,
            json.dumps(obj, sort_keys=True).encode("utf-8"),
            kind="json",
            codec="json",
        )

    def get_json(self, key: str) -> Optional[object]:
        payload = self.get_bytes(key, kind="json")
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None

    # -- codec-dispatched typed artifacts -------------------------------
    def _decode_with_codec(
        self, key: str, kind: str, mode: str, **ctx
    ) -> Optional[object]:
        """Read a typed artifact through the codec its entry names.

        ``mode="copy"`` reads + fully digest-verifies the payload, then
        decodes; ``mode="mmap"`` (for codecs that support ``open``)
        validates only the artifact header and hands the codec the file
        path + payload offset, so the object comes back as read-only
        memmap views sharing the page cache across processes.  Any
        defect — unknown codec (written by newer code), mismatched
        header, corrupt section, undecodable payload — reads as
        ``None``, the store's uniform "absent" answer.
        """
        from repro.io import codecs
        from repro.store.blobfmt import BlobError

        entry = self.entry(key)
        if entry is None or entry.get("kind") != kind:
            return None
        if entry.get("schema") != KIND_SCHEMAS[kind]:
            return None
        codec = codecs.lookup(kind, str(entry.get("codec")))
        if codec is None:
            return None
        path = self._object_path(str(entry["digest"]))
        if mode == "mmap" and codec.open is not None:
            from repro.store.artifacts import read_artifact_header

            try:
                header, offset = read_artifact_header(path)
            except ArtifactError:
                return None
            if (
                header.get("kind") != kind
                or header.get("schema") != KIND_SCHEMAS[kind]
            ):
                return None
            try:
                return codec.open(path, offset, **ctx)
            except (BlobError, codecs.CodecError, OSError, ValueError, KeyError):
                return None
        try:
            header, payload = read_artifact(path)
        except ArtifactError:
            return None
        if header.get("kind") != kind or header.get("schema") != KIND_SCHEMAS[kind]:
            return None
        try:
            return codec.decode(payload, **ctx)
        except Exception:  # undecodable-but-digest-valid: treat as absent
            return None

    def put_training_set(self, key: str, training_set: "TrainingSet") -> str:
        """Store a training set in the columnar blob format."""
        from repro.io import codecs

        codec = codecs.default_for("training_set")
        payload = codec.encode(training_set)
        return self.put_bytes(key, payload, kind="training_set", codec=codec.name)

    def get_training_set(
        self, key: str, space=None, mode: str = "copy"
    ) -> Optional["TrainingSet"]:
        """The stored training set, or ``None``.

        ``mode="mmap"`` returns a column-backed set whose arrays are
        read-only views over the artifact file (blob-codec entries
        only; legacy CSV entries always copy).
        """
        return self._decode_with_codec(
            key, "training_set", mode, space=space, source=key
        )  # type: ignore[return-value]

    def put_model(self, key: str, model: "HierarchicalModel") -> str:
        """Store a model, lowering it to blob sections when possible.

        Models that don't lower (custom ``component_factory``
        estimators) fall back to the pickle codec — both read back
        through :meth:`get_model` transparently.
        """
        from repro.io import codecs

        codec = codecs.default_for("model")
        try:
            payload = codec.encode(model)
        except codecs.CodecError:
            return self.put_object(key, model, kind="model")
        return self.put_bytes(key, payload, kind="model", codec=codec.name)

    def get_model(
        self, key: str, mode: str = "copy"
    ) -> Optional["HierarchicalModel"]:
        """The stored model, or ``None``.

        ``mode="mmap"`` maps the node tables and bin edges read-only
        from the artifact file — loading touches no array data, and N
        processes share one page-cache copy.  Predictions are
        bit-for-bit identical on every path.
        """
        return self._decode_with_codec(key, "model", mode)  # type: ignore[return-value]

    def put_ga_state(self, key: str, state: "GaState") -> str:
        return self.put_object(key, state, kind="ga_state")

    def get_ga_state(self, key: str) -> Optional["GaState"]:
        return self.get_object(key, kind="ga_state")  # type: ignore[return-value]

    def put_report(self, key: str, report: "TuningReport") -> str:
        return self.put_object(key, report, kind="report")

    def get_report(self, key: str) -> Optional["TuningReport"]:
        return self.get_object(key, kind="report")  # type: ignore[return-value]

    # -- job records ----------------------------------------------------
    def save_job(self, job_id: str, record: Dict[str, object]) -> None:
        """Persist a job record (atomic whole-file replace)."""
        payload = json.dumps(record, sort_keys=True, default=str).encode("utf-8")
        self._write_atomic(self.root / "jobs" / f"{job_id}.json", payload)

    def load_job(self, job_id: str) -> Optional[Dict[str, object]]:
        path = self.root / "jobs" / f"{job_id}.json"
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def list_jobs(self) -> List[Dict[str, object]]:
        """Every readable job record, oldest first."""
        records = []
        for path in sorted((self.root / "jobs").glob("*.json")):
            record = self.load_job(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.get("created", 0), str(r.get("job_id", ""))))
        return records

    # -- garbage collection ---------------------------------------------
    def gc(
        self,
        apply: bool = False,
        min_age_seconds: float = 3600.0,
        _now: Optional[float] = None,
    ) -> Dict[str, object]:
        """Sweep object blobs no index entry references any more.

        The index is append-only and latest-wins, so superseded
        versions of a key (re-collected training sets, per-order model
        checkpoints overwritten in place, every GA-generation state but
        the last) accumulate as unreferenced blobs.  Job records point
        at artifacts only *through* index keys, so the latest index
        digests are exactly the live set.

        Dry-run by default: returns a report of what would go without
        touching anything; ``apply=True`` deletes.  Blobs younger than
        ``min_age_seconds`` are kept regardless — a concurrent writer
        puts the blob *before* the index line, and the age floor keeps
        the sweep from racing that window.  Stale ``.*.tmp`` litter
        from crashed writers is swept by the same rule.
        """
        now = time.time() if _now is None else _now
        with self._lock:
            self._index = None
            live = {
                str(entry.get("digest")) for entry in self._load_index().values()
            }
        report: Dict[str, object] = {
            "live": 0,
            "swept": [],
            "skipped_young": 0,
            "tmp_swept": 0,
            "reclaimed_bytes": 0,
            "applied": bool(apply),
        }
        for path in sorted((self.root / "objects").glob("*/*")):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with another sweeper
            young = now - stat.st_mtime < min_age_seconds
            if path.name.startswith("."):
                if young:
                    report["skipped_young"] += 1
                    continue
                report["tmp_swept"] += 1
                report["reclaimed_bytes"] += stat.st_size
                if apply:
                    path.unlink(missing_ok=True)
                continue
            if path.name in live:
                report["live"] += 1
                continue
            if young:
                report["skipped_young"] += 1
                continue
            report["swept"].append({"digest": path.name, "bytes": stat.st_size})
            report["reclaimed_bytes"] += stat.st_size
            if apply:
                path.unlink(missing_ok=True)
        return report


def report_fingerprint(report: "TuningReport") -> str:
    """Digest of a report's *semantic* content.

    Covers everything the tuner decided — program, target size, chosen
    configuration, predicted time, full GA convergence history, model
    holdout error, simulated collection cost — and excludes wall-clock
    timings and engine accounting, which legitimately differ between an
    uninterrupted run and a checkpoint-resumed one.  Two runs with equal
    fingerprints made identical decisions.
    """
    config = report.configuration
    doc = {
        "program": report.program,
        "datasize": repr(report.datasize),
        "configuration": {name: repr(config[name]) for name in config},
        "predicted_seconds": repr(report.predicted_seconds),
        "ga_history": [repr(v) for v in report.ga.history],
        "ga_generations": report.ga.generations,
        "model_holdout_error": repr(report.model_holdout_error),
        "collecting_simulated_hours": repr(report.collecting_simulated_hours),
    }
    return payload_digest(json.dumps(doc, sort_keys=True).encode("utf-8"))
