"""The artifact container: one self-verifying file per stored object.

Every artifact the :class:`~repro.store.RunStore` holds — training
sets, fitted models, GA populations, reports — is written as a single
file: a one-line JSON header (magic, kind, schema version, codec,
payload size, SHA-256 digest) followed by the raw payload bytes.  The
file is produced via a same-directory temp file and an atomic rename,
and readers verify the header *and* the digest, so a crash at any
instant leaves either the previous complete version or nothing — a
partially-written artifact is detected and treated as absent, never
returned as data.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Dict, Tuple, Union

#: First bytes of every artifact file; anything else is not an artifact.
MAGIC = "repro-artifact"

#: Container-format version (the header layout itself, not the payload
#: schema — each artifact kind carries its own ``schema`` number).
CONTAINER_VERSION = 1


class ArtifactError(Exception):
    """A file that is not a complete, intact artifact.

    Raised on missing files, torn writes, digest mismatches and
    stale container formats alike — callers treat all of them as
    "the artifact is absent".
    """


def payload_digest(payload: bytes) -> str:
    """Content address of a payload (hex SHA-256)."""
    return hashlib.sha256(payload).hexdigest()


def write_artifact(
    path: Union[str, Path],
    payload: bytes,
    kind: str,
    schema: int,
    codec: str,
    fsync: bool = False,
) -> str:
    """Atomically write ``payload`` as an artifact file; returns its digest.

    The temp file lives in the destination directory so the final
    ``rename`` is atomic on POSIX; with ``fsync`` the payload is forced
    to stable storage before the rename (SIGKILL-safety never needs
    this — only power loss does).
    """
    path = Path(path)
    digest = payload_digest(payload)
    header = {
        "magic": MAGIC,
        "container": CONTAINER_VERSION,
        "kind": kind,
        "schema": int(schema),
        "codec": codec,
        "size": len(payload),
        "sha256": digest,
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(blob)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return digest


#: Header-line read chunk; a real header is well under this.
_HEADER_PROBE_BYTES = 64 * 1024


def read_artifact_header(
    path: Union[str, Path],
) -> Tuple[Dict[str, object], int]:
    """Read and validate only the header; returns ``(header, payload_offset)``.

    The zero-copy read path: the payload is *not* read or digested —
    only its declared size is checked against the file length, which
    catches truncation without touching the data pages.  Callers that
    skip :func:`read_artifact`'s full digest check are trusting the
    store's atomic-rename invariant (a visible blob is a completely
    written blob) plus the payload's own internal checksums, which the
    columnar blob format provides per section.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with path.open("rb") as handle:
            head = handle.read(_HEADER_PROBE_BYTES)
    except OSError as exc:
        raise ArtifactError(f"{path}: unreadable ({exc})") from exc
    newline = head.find(b"\n")
    if newline < 0:
        raise ArtifactError(f"{path}: no header line")
    try:
        header = json.loads(head[:newline].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"{path}: bad header ({exc})") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise ArtifactError(f"{path}: not an artifact")
    if header.get("container") != CONTAINER_VERSION:
        raise ArtifactError(
            f"{path}: container version {header.get('container')!r} "
            f"!= {CONTAINER_VERSION}"
        )
    payload_offset = newline + 1
    if size - payload_offset != header.get("size"):
        raise ArtifactError(
            f"{path}: truncated ({size - payload_offset} of "
            f"{header.get('size')} bytes)"
        )
    return header, payload_offset


def read_artifact(path: Union[str, Path]) -> Tuple[Dict[str, object], bytes]:
    """Read and verify an artifact; returns ``(header, payload)``.

    Raises :class:`ArtifactError` on any defect — missing file, bad
    header, truncated payload, digest mismatch, unknown container
    version.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise ArtifactError(f"{path}: unreadable ({exc})") from exc
    newline = blob.find(b"\n")
    if newline < 0:
        raise ArtifactError(f"{path}: no header line")
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"{path}: bad header ({exc})") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise ArtifactError(f"{path}: not an artifact")
    if header.get("container") != CONTAINER_VERSION:
        raise ArtifactError(
            f"{path}: container version {header.get('container')!r} "
            f"!= {CONTAINER_VERSION}"
        )
    payload = blob[newline + 1 :]
    if len(payload) != header.get("size"):
        raise ArtifactError(
            f"{path}: truncated ({len(payload)} of {header.get('size')} bytes)"
        )
    if payload_digest(payload) != header.get("sha256"):
        raise ArtifactError(f"{path}: digest mismatch")
    return header, payload
