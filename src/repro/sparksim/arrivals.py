"""Job arrival traces for shared-cluster scenarios.

A :class:`TraceSpec` declares a multi-job workload — which programs
arrive, at what Poisson rate, under which allocation policy, and what
adversities the cluster throws at them (heterogeneous node speeds,
stragglers, spot-node revocations).  :func:`generate_trace` expands a
``(spec, seed)`` pair into a concrete :class:`Trace` with *every*
stochastic draw made up front via :func:`repro.common.rng.derive_rng`:
inter-arrival gaps, template choices, random configurations, straggler
assignments and revocation times are all functions of the spec content
and the seed.  The scenario event loop downstream
(:mod:`repro.sparksim.scenario`) is pure, so one pair replays
bit-identically across processes and backends.

Per-job draws use a generator keyed by ``(spec, seed, job index)``
rather than one shared stream, so a draw made conditionally for one job
(e.g. a random configuration) can never shift another job's draws.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.common.rng import derive_rng
from repro.common.space import Configuration, ConfigurationSpace
from repro.sparksim.confspace import SPARK_CONF_SPACE

#: Allocation policies the scenario scheduler understands.
FIFO = "fifo"
FAIR = "fair"
POLICIES = (FIFO, FAIR)


@dataclass(frozen=True)
class JobTemplate:
    """One kind of job a trace draws from.

    ``overrides`` pins configuration parameters (a sorted tuple of
    ``(name, value)`` pairs so templates stay hashable); with
    ``random_config`` the rest of the configuration is sampled from the
    space per arrival — the shape background traffic has in practice,
    where co-tenants run whatever they run.
    """

    program: str
    size: float
    overrides: Tuple[Tuple[str, object], ...] = ()
    random_config: bool = False
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"{self.program}: size must be positive")
        if self.weight <= 0:
            raise ValueError(f"{self.program}: weight must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "size": self.size,
            "overrides": [[name, value] for name, value in self.overrides],
            "random_config": self.random_config,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "JobTemplate":
        return cls(
            program=str(doc["program"]),
            size=float(doc["size"]),
            overrides=tuple(
                (str(name), value) for name, value in doc.get("overrides", [])
            ),
            random_config=bool(doc.get("random_config", False)),
            weight=float(doc.get("weight", 1.0)),
        )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one shared-cluster scenario.

    Attributes
    ----------
    templates:
        Job kinds, drawn per arrival with probability proportional to
        ``weight``.
    n_jobs:
        How many jobs arrive in total.
    arrival_rate_per_min:
        Poisson arrival rate; ``0`` makes every job arrive at t=0 (a
        pure contention burst).
    policy:
        ``"fifo"`` (head-of-line queueing: a job waits until its whole
        capped demand fits) or ``"fair"`` (integer max-min sharing).
    executor_slots:
        Pool size; ``None`` uses the cluster's total core count.
    node_speed_factors:
        Relative speed of each node; slots divide into equal contiguous
        blocks, one per factor.  Empty means homogeneous (1.0).
    straggler_probability / straggler_factor:
        Each arrival independently becomes a straggler (its work runs
        ``straggler_factor`` times slower) with this probability.
    revocation_rate_per_min:
        Poisson rate of spot-node revocation events over
        ``[0, revocation_horizon_s)``; each removes
        ``ceil(revocation_fraction * slots)`` slots for
        ``revocation_duration_s`` and charges affected jobs
        ``revocation_rework`` of the work they had completed on the
        lost share.
    interference_coefficient:
        Strength of the I/O-contention penalty between co-running jobs
        (0 disables it).
    """

    name: str
    templates: Tuple[JobTemplate, ...]
    n_jobs: int
    arrival_rate_per_min: float = 2.0
    policy: str = FIFO
    executor_slots: Optional[int] = None
    node_speed_factors: Tuple[float, ...] = ()
    straggler_probability: float = 0.0
    straggler_factor: float = 1.6
    revocation_rate_per_min: float = 0.0
    revocation_fraction: float = 0.2
    revocation_duration_s: float = 180.0
    revocation_rework: float = 0.5
    revocation_horizon_s: float = 3600.0
    interference_coefficient: float = 0.35

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("trace needs at least one job template")
        if self.n_jobs < 1:
            raise ValueError("trace needs at least one job")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; pick from {POLICIES}")
        if self.executor_slots is not None and self.executor_slots < 1:
            raise ValueError("executor_slots must be positive")
        if any(f <= 0 for f in self.node_speed_factors):
            raise ValueError("node speed factors must be positive")
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if not 0.0 < self.revocation_fraction <= 1.0:
            raise ValueError("revocation_fraction must be in (0, 1]")
        if self.revocation_rework < 0.0:
            raise ValueError("revocation_rework must be >= 0")
        if self.interference_coefficient < 0.0:
            raise ValueError("interference_coefficient must be >= 0")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "templates": [t.to_dict() for t in self.templates],
            "n_jobs": self.n_jobs,
            "arrival_rate_per_min": self.arrival_rate_per_min,
            "policy": self.policy,
            "executor_slots": self.executor_slots,
            "node_speed_factors": list(self.node_speed_factors),
            "straggler_probability": self.straggler_probability,
            "straggler_factor": self.straggler_factor,
            "revocation_rate_per_min": self.revocation_rate_per_min,
            "revocation_fraction": self.revocation_fraction,
            "revocation_duration_s": self.revocation_duration_s,
            "revocation_rework": self.revocation_rework,
            "revocation_horizon_s": self.revocation_horizon_s,
            "interference_coefficient": self.interference_coefficient,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "TraceSpec":
        slots = doc.get("executor_slots")
        return cls(
            name=str(doc["name"]),
            templates=tuple(JobTemplate.from_dict(t) for t in doc["templates"]),
            n_jobs=int(doc["n_jobs"]),
            arrival_rate_per_min=float(doc.get("arrival_rate_per_min", 2.0)),
            policy=str(doc.get("policy", FIFO)),
            executor_slots=None if slots is None else int(slots),
            node_speed_factors=tuple(
                float(f) for f in doc.get("node_speed_factors", [])
            ),
            straggler_probability=float(doc.get("straggler_probability", 0.0)),
            straggler_factor=float(doc.get("straggler_factor", 1.6)),
            revocation_rate_per_min=float(doc.get("revocation_rate_per_min", 0.0)),
            revocation_fraction=float(doc.get("revocation_fraction", 0.2)),
            revocation_duration_s=float(doc.get("revocation_duration_s", 180.0)),
            revocation_rework=float(doc.get("revocation_rework", 0.5)),
            revocation_horizon_s=float(doc.get("revocation_horizon_s", 3600.0)),
            interference_coefficient=float(
                doc.get("interference_coefficient", 0.35)
            ),
        )

    def spec_key(self) -> str:
        """Canonical string identity of this spec (seeds RNG derivation
        and backend cache signatures: equal keys mean equal scenarios)."""
        return json.dumps(self.to_dict(), sort_keys=True)


def load_trace_spec(path: Union[str, Path]) -> TraceSpec:
    """Read a :class:`TraceSpec` from a JSON file written by ``to_dict``."""
    return TraceSpec.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Concrete traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobArrival:
    """One job instance of a trace, fully determined at generation time."""

    index: int
    job_id: str
    program: str
    size: float
    arrival_s: float
    config: Configuration
    straggler_factor: float = 1.0


@dataclass(frozen=True)
class Revocation:
    """A spot-node event: ``slots`` executors vanish for ``duration_s``."""

    at_s: float
    slots: int
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class Trace:
    """A fully expanded ``(spec, seed)`` pair — the event loop's input."""

    spec: TraceSpec
    seed: int
    arrivals: Tuple[JobArrival, ...]
    revocations: Tuple[Revocation, ...]


def _pick_template(
    templates: Tuple[JobTemplate, ...], draw: float
) -> JobTemplate:
    """Weighted choice driven by one uniform draw in [0, 1)."""
    total = sum(t.weight for t in templates)
    acc = 0.0
    for template in templates:
        acc += template.weight / total
        if draw < acc:
            return template
    return templates[-1]


def generate_trace(
    spec: TraceSpec,
    seed: int = 0,
    space: ConfigurationSpace = SPARK_CONF_SPACE,
) -> Trace:
    """Expand a spec into concrete arrivals and revocations.

    All randomness happens here, from generators keyed by
    ``(spec content, seed)`` — the downstream simulation is pure.
    """
    key = spec.spec_key()

    arrival_rng = derive_rng("scenario.arrivals", key, seed)
    arrivals = []
    t = 0.0
    for index in range(spec.n_jobs):
        if spec.arrival_rate_per_min > 0:
            t += float(arrival_rng.exponential(60.0 / spec.arrival_rate_per_min))
        job_rng = derive_rng("scenario.job", key, seed, index)
        template = _pick_template(spec.templates, float(job_rng.random()))
        if template.random_config:
            config = space.random(job_rng)
            if template.overrides:
                config = config.replacing_values(dict(template.overrides))
        else:
            config = space.from_dict(dict(template.overrides))
        straggler = 1.0
        if spec.straggler_probability > 0:
            if float(job_rng.random()) < spec.straggler_probability:
                straggler = spec.straggler_factor
        arrivals.append(
            JobArrival(
                index=index,
                job_id=f"{template.program.lower()}-{index:03d}",
                program=template.program,
                size=template.size,
                arrival_s=t if spec.arrival_rate_per_min > 0 else 0.0,
                config=config,
                straggler_factor=straggler,
            )
        )

    revocations = []
    if spec.revocation_rate_per_min > 0:
        revocation_rng = derive_rng("scenario.revocations", key, seed)
        rt = 0.0
        while True:
            rt += float(
                revocation_rng.exponential(60.0 / spec.revocation_rate_per_min)
            )
            if rt >= spec.revocation_horizon_s:
                break
            revocations.append(
                Revocation(
                    at_s=rt,
                    slots=0,  # placeholder, resolved against the pool below
                    duration_s=spec.revocation_duration_s,
                )
            )

    return Trace(
        spec=spec,
        seed=seed,
        arrivals=tuple(arrivals),
        revocations=tuple(revocations),
    )


def resolve_revocations(
    trace: Trace, slots: int
) -> Tuple[Revocation, ...]:
    """Bind a trace's revocation events to a concrete pool size.

    The spec speaks in *fractions* of the pool; the runner knows the
    pool's slot count (which may come from the cluster).  Purely
    arithmetic — no randomness.
    """
    count = max(1, math.ceil(trace.spec.revocation_fraction * slots))
    count = min(count, slots)
    return tuple(replace(r, slots=count) for r in trace.revocations)
