"""JVM garbage-collection cost model.

Both of the paper's deep-dive analyses (Figures 13 and 14) attribute the
bulk of DAC's win to reduced garbage-collection time, and note that with
DAC-tuned configurations "the garbage collection time of applications
increases more slowly" with dataset size.  The model therefore has to
capture the two first-order drivers of JVM GC cost:

* **allocation rate** — every byte deserialized, shuffled or aggregated
  churns the young generation; GC work is proportional to allocated
  bytes;
* **heap occupancy** — the cost *per collection* explodes as live data
  (cached RDD partitions + task working sets + user objects) approaches
  the heap size, because full GCs copy the live set repeatedly.

Off-heap memory (``spark.memory.offHeap.*``) removes bytes from the
heap entirely; a ``spark.memory.fraction`` near 1.0 starves the user
region and raises occupancy.  The occupancy term uses the classic
``occ / (1 - occ)`` shape of copying-collector cost analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import MB
from repro.sparksim.config import RESERVED_MEMORY_BYTES, SparkConf


@dataclass(frozen=True)
class GcModel:
    """GC seconds charged to a task, given its allocation and live bytes."""

    conf: SparkConf

    #: GC seconds per allocated GB at low occupancy (young-gen only).
    BASE_SECONDS_PER_GB: float = 0.055
    #: Max multiplier from occupancy (caps the occ/(1-occ) blow-up at a
    #: full-GC-thrash regime where the collector dominates the CPU).
    MAX_OCCUPANCY_FACTOR: float = 80.0

    def heap_bytes(self) -> float:
        return float(self.conf.executor_memory)

    def occupancy(
        self,
        live_task_bytes: float,
        resident_cache_bytes_per_executor: float,
        user_object_bytes: float,
    ) -> float:
        """Live-bytes fraction of the executor heap during a task.

        ``live_task_bytes`` is one task's working set; all
        ``executor.cores`` tasks run concurrently, so the executor sees
        ``cores x`` that much, plus resident cached partitions, plus user
        objects, plus Spark's own reserved structures.  Off-heap storage
        is subtracted because it never enters the collector's view.
        """
        cores = self.conf.executor_cores
        live = (
            live_task_bytes * cores
            + resident_cache_bytes_per_executor
            + user_object_bytes * cores
            + RESERVED_MEMORY_BYTES * 0.6
        )
        live -= min(self.conf.off_heap_size, live * 0.5)
        return float(min(max(live / self.heap_bytes(), 0.0), 0.995))

    def occupancy_factor(self, occ: float) -> float:
        """Cost multiplier from heap occupancy (1 at empty heap).

        The +0.05 floor in the denominator softens the asymptote: the
        thrash regime is expensive but not a step function — live sets
        hovering at the heap limit degrade gradually in practice.
        """
        factor = 1.0 + 2.0 * (occ * occ) / (max(1.0 - occ, 0.0) + 0.05)
        return float(min(factor, self.MAX_OCCUPANCY_FACTOR))

    def gc_seconds(
        self,
        allocated_bytes: float,
        live_task_bytes: float,
        resident_cache_bytes_per_executor: float,
        user_object_bytes: float = 0.0,
    ) -> float:
        """Total GC seconds one task suffers."""
        occ = self.occupancy(
            live_task_bytes, resident_cache_bytes_per_executor, user_object_bytes
        )
        per_gb = self.BASE_SECONDS_PER_GB * self.occupancy_factor(occ)
        return float(allocated_bytes / (1024.0 * MB) * per_gb)

    def max_pause_seconds(self, gc_seconds_per_task: float, occ: float) -> float:
        """Worst single stop-the-world pause a task experiences.

        Full-GC pauses scale with the live set; used by the network model
        to decide whether Akka's failure detector declares the executor
        lost (``spark.akka.heartbeat.pauses``).
        """
        if gc_seconds_per_task <= 0:
            return 0.0
        pause = 0.05 + gc_seconds_per_task * (0.25 + 0.6 * occ)
        return float(pause)
