"""Per-stage task cost composition.

:class:`StageCostModel` glues the component models (serialization,
compression, memory, GC, shuffle, network) into the mean cost and risk
profile of one task of one stage.  The scheduler then turns the per-task
profile into a stage makespan (waves, stragglers, speculation, retries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.units import MB
from repro.sparksim.cluster import ClusterSpec
from repro.sparksim.config import SparkConf
from repro.sparksim.dag import StageSpec
from repro.sparksim.gc import GcModel
from repro.sparksim.memory import MemoryModel
from repro.sparksim.network import NetworkModel
from repro.sparksim.serializer import CompressionModel, SerializerModel
from repro.sparksim.shuffle import ShuffleModel


@dataclass(frozen=True)
class TaskProfile:
    """Mean per-task costs and risks for one stage iteration.

    ``compute/io/shuffle/gc`` partition the mean task seconds; the
    scheduler adds waves, skew, and retry machinery on top.
    """

    num_tasks: int
    compute_seconds: float
    io_seconds: float
    shuffle_seconds: float
    gc_seconds: float
    spill_bytes: float
    oom_probability: float
    max_gc_pause_seconds: float
    network_seconds: float
    skew: float

    @property
    def mean_seconds(self) -> float:
        return (
            self.compute_seconds
            + self.io_seconds
            + self.shuffle_seconds
            + self.gc_seconds
        )


class StageCostModel:
    """Computes :class:`TaskProfile` for stages under one configuration."""

    def __init__(self, conf: SparkConf, cluster: ClusterSpec):
        self.conf = conf
        self.cluster = cluster
        self.serializer = SerializerModel(conf)
        self.codec = CompressionModel(conf)
        self.memory = MemoryModel(conf)
        self.gc = GcModel(conf)
        self.shuffle = ShuffleModel(conf, cluster)
        self.network = NetworkModel(conf, cluster)

    # ------------------------------------------------------------------
    def num_partitions(self, stage: StageSpec) -> int:
        """Partition count: HDFS blocks for input stages, otherwise
        ``spark.default.parallelism`` (the Table-2 knob)."""
        if stage.parents:
            # Shuffle-fed stages are partitioned by default.parallelism:
            # with the Table-2 range capped at 50, per-task volume grows
            # linearly with input size — the root of IMC's datasize
            # sensitivity (Section 2.2.1).
            return max(self.conf.default_parallelism, 1)
        blocks = int(math.ceil(stage.input_bytes / self.cluster.hdfs_block_bytes))
        return max(blocks, 1)

    def local_fraction(self) -> float:
        """Achieved data locality for shuffle reads.

        Waiting longer (``spark.locality.wait``) raises the chance the
        scheduler finds a node-local slot before falling back.
        """
        base = 1.0 / self.cluster.worker_nodes  # random placement floor
        patience = 1.0 - math.exp(-self.conf.locality_wait / 4.0)
        return base + (0.85 - base) * patience

    # ------------------------------------------------------------------
    def profile(
        self,
        stage: StageSpec,
        shuffle_in_bytes: float,
        resident_cache_bytes_per_executor: float,
        cache_hit_fraction: float,
        num_reduce_partitions_out: int,
    ) -> TaskProfile:
        """Mean per-task cost of one iteration of ``stage``.

        Parameters
        ----------
        shuffle_in_bytes:
            Total shuffle bytes this stage reads (sum of parents'
            output), per iteration.
        resident_cache_bytes_per_executor:
            Live cached RDD bytes held on each executor heap (GC load).
        cache_hit_fraction:
            For stages with ``reads_cached``: fraction of the cached
            input actually resident; misses re-read HDFS.
        num_reduce_partitions_out:
            Partition count of the downstream shuffle (file fan-out).
        """
        n_tasks = self.num_partitions(stage)
        processed = stage.input_bytes + shuffle_in_bytes
        raw_per_task = processed / n_tasks
        expansion = self.serializer.memory_expansion()

        # Tasks *actually* running per node: bounded by the slots the
        # packing provides and by how many tasks the stage has at all.
        slots_per_node = self.conf.executors_per_node * self.conf.executor_cores
        concurrent = max(
            1,
            min(slots_per_node, math.ceil(n_tasks / self.cluster.worker_nodes)),
        )

        # -- compute -----------------------------------------------------
        compute = (raw_per_task / MB) * stage.cpu_seconds_per_mb / self.cluster.core_speed
        compute *= 1.0 + self.network.heartbeat_overhead_fraction()

        # -- input I/O ----------------------------------------------------
        disk_share = self.cluster.disk_share(concurrent)
        io = 0.0
        if stage.input_bytes > 0:
            read_bytes = stage.input_bytes / n_tasks
            if stage.reads_cached:
                # Misses fall back to HDFS; hits pay only the (possibly
                # compressed-cache) reuse CPU.
                io += read_bytes * (1.0 - cache_hit_fraction) / disk_share
                compute += (
                    read_bytes
                    * cache_hit_fraction
                    * self.serializer.cache_reuse_seconds_per_byte()
                )
            else:
                io += read_bytes / disk_share
        if stage.output_bytes > 0:
            io += (stage.output_bytes / n_tasks) / disk_share

        # -- memory -------------------------------------------------------
        working_set = raw_per_task * expansion * stage.working_set_factor
        outcome = self.memory.task_outcome(
            working_set,
            stage.user_state_bytes,
            stage.unspillable_fraction,
            resident_cache_bytes_per_executor,
        )

        # -- shuffle ------------------------------------------------------
        shuffle_seconds = 0.0
        network_seconds = 0.0
        if shuffle_in_bytes > 0:
            read = self.shuffle.read_cost(
                shuffle_in_bytes / n_tasks, self.local_fraction(), concurrent
            )
            shuffle_seconds += read.cpu_seconds + read.network_seconds + read.disk_seconds
            network_seconds += read.network_seconds
        shuffle_out = processed * stage.shuffle_out_ratio
        if shuffle_out > 0:
            write = self.shuffle.write_cost(
                shuffle_out / n_tasks,
                num_reduce_partitions_out,
                outcome.spill_bytes,
                stage.map_side_combine,
                concurrent,
            )
            shuffle_seconds += (
                write.cpu_seconds + write.disk_seconds + write.spill_extra_seconds
            )

        # -- GC -----------------------------------------------------------
        allocated = raw_per_task * expansion + (shuffle_in_bytes / n_tasks) * expansion
        gc_seconds = self.gc.gc_seconds(
            allocated_bytes=allocated,
            live_task_bytes=working_set,
            resident_cache_bytes_per_executor=resident_cache_bytes_per_executor,
            user_object_bytes=stage.user_state_bytes,
        )
        occ = self.gc.occupancy(
            working_set, resident_cache_bytes_per_executor, stage.user_state_bytes
        )
        max_pause = self.gc.max_pause_seconds(gc_seconds, occ)

        # -- serialization failure risk folds into OOM-style retries ------
        oom = outcome.oom_probability
        ser_risk = self.serializer.record_failure_risk(stage.record_bytes)
        oom = 1.0 - (1.0 - oom) * (1.0 - ser_risk)

        return TaskProfile(
            num_tasks=n_tasks,
            compute_seconds=compute,
            io_seconds=io,
            shuffle_seconds=shuffle_seconds,
            gc_seconds=gc_seconds,
            spill_bytes=outcome.spill_bytes,
            oom_probability=oom,
            max_gc_pause_seconds=max_pause,
            network_seconds=network_seconds,
            skew=stage.skew,
        )
