"""Unified memory manager model: spills, cache admission, OOM risk.

Spark 1.6's UnifiedMemoryManager divides each executor heap into a
reserved region (300 MB), a *user* region sized by
``1 - spark.memory.fraction``, and a unified *Spark* region
(``spark.memory.fraction``) shared between execution and storage, with
storage protected from eviction up to ``spark.memory.storageFraction``.
This module answers, for one task with a given working set:

* how much of its working set fits in execution memory and how much
  spills to disk (``spark.shuffle.spill``);
* the probability the task dies with an OutOfMemoryError — the mechanism
  behind the paper's observation that the 1 GB default executor heap
  makes large inputs "rerun some tasks many times" (Section 5.6);
* how much of a job's cached RDD footprint actually stays resident
  (cache hit fraction), which drives recompute costs in iterative
  workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sparksim.config import SparkConf


def _sigmoid(x: float) -> float:
    # Clamp to keep exp() in range.
    x = min(max(x, -40.0), 40.0)
    return 1.0 / (1.0 + math.exp(-x))


def _risk(pressure: float, slope: float, center: float) -> float:
    """Sigmoid risk curve anchored at exactly zero for zero pressure.

    A raw sigmoid has a nonzero floor at pressure 0, which would give
    every healthy task a phantom failure rate; subtracting the floor and
    renormalizing keeps the curve smooth while making no-pressure tasks
    genuinely safe.
    """
    raw = _sigmoid(slope * (pressure - center))
    floor = _sigmoid(-slope * center)
    return max(0.0, (raw - floor) / (1.0 - floor))


@dataclass(frozen=True)
class TaskMemoryOutcome:
    """How one task's memory demand resolves.

    Attributes
    ----------
    spill_bytes:
        Deserialized bytes that overflow execution memory and are spilled
        (0 when spilling is disabled — then the overflow converts into
        OOM risk instead).
    oom_probability:
        Probability this attempt dies with an OOM.
    pressure:
        working set / available execution memory; >1 means overflow.
    """

    spill_bytes: float
    oom_probability: float
    pressure: float


class MemoryModel:
    """Memory behaviour of tasks under one configuration."""

    #: Default fraction of a working set held in un-spillable structures
    #: (pointer arrays, current record batches); stages override this via
    #: ``StageSpec.unspillable_fraction``.
    UNSPILLABLE_FRACTION = 0.08

    def __init__(self, conf: SparkConf):
        self.conf = conf

    # -- caching --------------------------------------------------------
    def storage_capacity_bytes(self) -> float:
        """Cluster-wide storage memory available for cached RDDs."""
        return self.conf.spark_memory_per_executor * self.conf.num_executors

    def cache_hit_fraction(self, cached_bytes: float) -> float:
        """Fraction of a cached RDD that stays memory-resident.

        Storage may use the whole unified region when execution is idle,
        but under execution pressure it is squeezed back to the protected
        ``storageFraction`` share; we average the two regimes.
        """
        if cached_bytes <= 0:
            return 1.0
        full = self.storage_capacity_bytes()
        protected = full * self.conf.storage_fraction
        effective = 0.5 * (full + protected)
        return float(min(1.0, effective / cached_bytes))

    # -- per-task execution memory ---------------------------------------
    def execution_available_per_task(
        self, resident_cache_bytes_per_executor: float = 0.0
    ) -> float:
        """Execution memory one task can claim, given actual cache usage.

        Unified memory management (Spark 1.6): execution may use the
        whole Spark region minus whatever cached storage is *actually
        resident and protected*.  ``spark.memory.storageFraction`` only
        bites when cached blocks occupy it — with an empty cache the
        whole region is execution's.
        """
        protected = min(
            self.conf.protected_storage_per_executor,
            max(resident_cache_bytes_per_executor, 0.0),
        )
        available = self.conf.spark_memory_per_executor - protected
        per_task = available / self.conf.executor_cores
        return max(per_task + self.conf.off_heap_size / self.conf.executor_cores, 1.0)

    def task_outcome(
        self,
        working_set_bytes: float,
        user_object_bytes: float = 0.0,
        unspillable_fraction: float = UNSPILLABLE_FRACTION,
        resident_cache_bytes_per_executor: float = 0.0,
    ) -> TaskMemoryOutcome:
        """Resolve one task's demand against its execution-memory share.

        Parameters
        ----------
        working_set_bytes:
            Deserialized bytes the task must materialize for aggregation,
            sorting, or join buffers (spillable machinery).
        user_object_bytes:
            Long-lived user objects (closures, per-partition state) that
            live in the *user* region and can never spill.
        resident_cache_bytes_per_executor:
            Cached RDD bytes actually occupying storage memory.

        Note: ``spark.shuffle.spill`` is deliberately ignored — as of
        Spark 1.6 the parameter is deprecated and spilling is always
        enabled (Table 2 still lists it, and tuners must learn that it
        does nothing).
        """
        available = self.execution_available_per_task(
            resident_cache_bytes_per_executor
        )
        pressure = working_set_bytes / available

        user_available = max(
            self.conf.user_memory_per_executor / self.conf.executor_cores, 1.0
        )
        user_pressure = user_object_bytes / user_available

        overflow = max(0.0, working_set_bytes - available)
        spill_bytes = overflow
        # Even with spilling, the unspillable slice must fit: pressure
        # far above 1/unspillable means the in-memory skeleton alone
        # exceeds the share.  The curve is gentle — real Spark mostly
        # crawls (spills) rather than dies.
        unspillable = working_set_bytes * unspillable_fraction
        hard_pressure = unspillable / available
        oom = min(_risk(hard_pressure, 1.2, 2.5), 0.90)

        # User-region overflow OOMs regardless of spill settings; this is
        # what punishes spark.memory.fraction -> 1.0 (no user memory left).
        oom = 1.0 - (1.0 - oom) * (1.0 - _risk(user_pressure, 3.0, 1.3))
        return TaskMemoryOutcome(
            spill_bytes=spill_bytes,
            oom_probability=float(min(oom, 0.995)),
            pressure=pressure,
        )
