"""Serialization and compression cost models.

Spark 1.6 serializes data whenever it crosses an executor boundary
(shuffle, broadcast) or is cached in serialized form, and optionally
compresses it (``spark.io.compression.codec``).  Six of the 41 Table-2
parameters live here:

* ``spark.serializer`` (java vs. kryo), ``spark.kryo.referenceTracking``,
  ``spark.kryoserializer.buffer``, ``spark.kryoserializer.buffer.max``;
* ``spark.io.compression.codec`` and its per-codec block sizes.

Throughput constants are calibrated to the usual folklore numbers: Kryo
serializes roughly 3-4x faster than Java serialization and produces
2-3x smaller payloads; snappy/lz4 are fast with moderate ratios, lzf is
slower but slightly denser.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KB, MB
from repro.sparksim.config import SparkConf

#: serialize MB/s, deserialize MB/s, on-wire bytes per deserialized byte
_SERIALIZERS = {
    "java": (130.0, 160.0, 1.00),
    "kryo": (420.0, 520.0, 0.55),
}

#: compress MB/s, decompress MB/s, compressed bytes per input byte
_CODECS = {
    "snappy": (430.0, 1350.0, 0.55),
    "lz4": (480.0, 1500.0, 0.52),
    "lzf": (290.0, 850.0, 0.48),
}

#: Deserialized JVM-object bytes per raw input byte. Java object headers,
#: boxing and pointer indirection inflate the in-memory footprint.
_EXPANSION = {"java": 3.4, "kryo": 3.4}


@dataclass(frozen=True)
class SerializerModel:
    """Per-byte costs of the configured serializer.

    All ``*_seconds_per_byte`` figures are CPU time on one core at
    ``core_speed`` 1.0.
    """

    conf: SparkConf

    @property
    def _base(self):
        return _SERIALIZERS[self.conf.serializer]

    @property
    def _kryo_penalty(self) -> float:
        """Multiplier > 1 for Kryo misconfiguration.

        Reference tracking costs ~25%.  An initial buffer much smaller
        than a record forces repeated buffer doubling; a small
        ``buffer.max`` forces flushes for large records.
        """
        if self.conf.serializer != "kryo":
            return 1.0
        penalty = 1.25 if self.conf.kryo_reference_tracking else 1.0
        buffer_kb = self.conf.kryo_buffer / KB
        if buffer_kb < 16:
            penalty *= 1.0 + 0.012 * (16 - buffer_kb)
        return penalty

    def serialize_seconds_per_byte(self) -> float:
        ser_mbps, _, _ = self._base
        return self._kryo_penalty / (ser_mbps * MB)

    def deserialize_seconds_per_byte(self) -> float:
        _, deser_mbps, _ = self._base
        return self._kryo_penalty / (deser_mbps * MB)

    def wire_ratio(self) -> float:
        """Serialized bytes per deserialized-object byte (before codec)."""
        return self._base[2]

    def record_failure_risk(self, record_bytes: float) -> float:
        """Probability one serialization call overflows ``buffer.max``.

        Kryo throws when a record exceeds the maximum buffer; workloads
        with large records (e.g. NWeight adjacency rows) are exposed when
        ``spark.kryoserializer.buffer.max`` is tuned down.
        """
        if self.conf.serializer != "kryo":
            return 0.0
        if record_bytes <= self.conf.kryo_buffer_max:
            return 0.0
        # Deterministic failure in real Kryo; expressed as a probability
        # so the retry machinery treats it uniformly with OOM.
        return 0.95

    def memory_expansion(self) -> float:
        """In-memory deserialized bytes per raw dataset byte."""
        return _EXPANSION[self.conf.serializer]

    def cached_bytes_per_raw_byte(self) -> float:
        """Storage-memory footprint of a cached RDD per raw byte.

        ``spark.rdd.compress`` stores partitions serialized+compressed
        (cheap to hold, costly to reuse); otherwise caching holds live
        deserialized objects.
        """
        if self.conf.rdd_compress:
            codec = CompressionModel(self.conf)
            return self.wire_ratio() * codec.ratio()
        return self.memory_expansion()

    def cache_reuse_seconds_per_byte(self) -> float:
        """Extra CPU to consume one raw byte from cache.

        Deserialized caches are free to reuse; ``rdd.compress`` caches pay
        decompression + deserialization on every access (this is the
        classic CPU-for-memory trade the knob controls).
        """
        if not self.conf.rdd_compress:
            return 0.0
        codec = CompressionModel(self.conf)
        wire = self.wire_ratio()
        return (
            self.deserialize_seconds_per_byte() * wire
            + codec.decompress_seconds_per_byte() * wire * codec.ratio()
        )


@dataclass(frozen=True)
class CompressionModel:
    """Per-byte costs and ratio of the configured I/O codec."""

    conf: SparkConf

    @property
    def _base(self):
        return _CODECS[self.conf.compression_codec]

    def _block_factor(self) -> float:
        """Mild efficiency curve in the codec block size.

        Tiny blocks hurt ratio and add per-block overhead; very large
        blocks stop helping and cost buffer memory.  The curve is centred
        on the 32 KB default.
        """
        import math

        block_kb = max(self.conf.codec_block_size / KB, 1.0)
        return math.log2(block_kb / 32.0)

    def ratio(self) -> float:
        """Compressed bytes per input byte (lower is denser)."""
        _, _, base_ratio = self._base
        adjusted = base_ratio * (1.0 - 0.015 * self._block_factor())
        return float(min(max(adjusted, 0.30), 0.95))

    def compress_seconds_per_byte(self) -> float:
        comp_mbps, _, _ = self._base
        # Small blocks add per-block call overhead.
        overhead = 1.0 + max(0.0, -self._block_factor()) * 0.06
        return overhead / (comp_mbps * MB)

    def decompress_seconds_per_byte(self) -> float:
        _, decomp_mbps, _ = self._base
        overhead = 1.0 + max(0.0, -self._block_factor()) * 0.04
        return overhead / (decomp_mbps * MB)
