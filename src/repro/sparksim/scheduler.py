"""Stage scheduling: waves, stragglers, speculation, and retries.

Turns a :class:`~repro.sparksim.task.TaskProfile` into the wall-clock
time of one stage iteration.  The scheduling knobs of Table 2 act here:

* ``spark.speculation`` (+ interval/multiplier/quantile) re-launches
  straggler tasks and caps the stage tail;
* ``spark.locality.wait`` delays launches hoping for a local slot (the
  locality *benefit* is applied in the shuffle-read model; the *cost* —
  the wait itself — is charged here);
* ``spark.scheduler.revive.interval`` delays resource offers, adding
  latency to every scheduling round;
* ``spark.task.maxFailures`` bounds OOM/fetch-failure retries; exhausting
  it aborts the job, which the user re-submits (the paper's "rerun some
  tasks many times" regime for under-provisioned heaps).

The makespan is computed in *expectation* — log-normal order statistics
for the longest task, expected straggler contribution, expected retry
counts — with only a small multiplicative noise drawn per stage.  A real
cluster is noisier, but an analytic substrate keeps the configuration
response learnable, which is the property the paper's modelling study
depends on (their measured models reach 7.6% relative error; a substrate
with 30% run-to-run noise could never reproduce that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sparksim.config import SparkConf
from repro.sparksim.task import TaskProfile

#: Fraction of a task's cost paid by an attempt that dies with OOM
#: (tasks typically fail deep into their aggregation phase).
_FAILED_ATTEMPT_COST = 0.7
#: Hard cap on job-level re-submissions when a stage keeps aborting.
_MAX_JOB_RERUNS = 3.0
#: Probability a task lands on a slow node / suffers interference.
_STRAGGLER_PROBABILITY = 0.025
#: Mean slowdown of a straggler task (hardware/interference, not skew).
_STRAGGLER_FACTOR = 2.9
#: Residual per-stage measurement noise (log-normal sigma).
_STAGE_NOISE_SIGMA = 0.04


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock outcome of one stage iteration."""

    seconds: float
    gc_seconds: float
    expected_attempts_per_task: float
    job_rerun_factor: float
    speculation_active: bool


class WaveScheduler:
    """Computes stage makespans under one configuration."""

    def __init__(self, conf: SparkConf):
        self.conf = conf

    # ------------------------------------------------------------------
    def _expected_longest(self, profile: TaskProfile) -> float:
        """E[max of n log-normal task times] (Cramér approximation)."""
        n = profile.num_tasks
        sigma = max(profile.skew, 1e-3)
        if n <= 1:
            return profile.mean_seconds
        z = math.sqrt(2.0 * math.log(n))
        return profile.mean_seconds * math.exp(sigma * z - 0.5 * sigma * sigma)

    def _tail_seconds(self, profile: TaskProfile) -> tuple[float, bool, float]:
        """Expected stage tail: skew tail vs. straggler tail vs. speculation.

        Returns (tail_seconds, speculation_active, speculation_overhead).
        """
        mean = profile.mean_seconds
        longest = self._expected_longest(profile)

        # Probability at least one straggler occurs, and its slowdown.
        p_any = 1.0 - (1.0 - _STRAGGLER_PROBABILITY) ** profile.num_tasks
        straggler_tail = mean * (1.0 + p_any * (_STRAGGLER_FACTOR - 1.0))
        tail = max(longest, straggler_tail)

        overhead = 0.0
        active = False
        if self.conf.speculation and profile.num_tasks >= 2:
            # A speculative copy launches once the completion quantile is
            # reached and the task exceeds multiplier x median; the stage
            # then waits for the copy instead of the original.
            quantile = min(max(self.conf.speculation_quantile, 0.001), 0.999)
            launch_at = mean * math.exp(
                max(profile.skew, 1e-3) * _normal_quantile(quantile)
            )
            cap = max(mean * self.conf.speculation_multiplier, launch_at) + mean
            if cap < tail:
                tail = cap
                active = True
            overhead = 0.002 / max(self.conf.speculation_interval, 0.01)
        return tail, active, overhead

    # ------------------------------------------------------------------
    def _retry_factors(
        self, oom_probability: float, num_tasks: int
    ) -> tuple[float, float]:
        """Expected attempts per task and job-level rerun factor.

        With per-attempt failure probability ``p`` and ``k`` =
        ``spark.task.maxFailures``, attempts-until-success (truncated) is
        ``(1 - p^k) / (1 - p)``; the probability *some* task exhausts all
        ``k`` attempts aborts the job, which is then resubmitted — the
        expected number of submissions is ``1 / (1 - P(abort))``, capped.
        """
        p = float(min(max(oom_probability, 0.0), 0.995))
        k = self.conf.task_max_failures
        if p <= 0.0:
            return 1.0, 1.0
        attempts = (1.0 - p**k) / (1.0 - p)
        p_task_aborts = p**k
        # P(no task aborts) across the stage's tasks.
        log_ok = num_tasks * math.log(max(1.0 - p_task_aborts, 1e-12))
        p_stage_ok = math.exp(max(log_ok, -60.0))
        reruns = min(1.0 / max(p_stage_ok, 1.0 / _MAX_JOB_RERUNS), _MAX_JOB_RERUNS)
        return attempts, reruns

    # ------------------------------------------------------------------
    def stage_time(
        self,
        profile: TaskProfile,
        extra_failure_probability: float,
        rng: np.random.Generator,
    ) -> StageTiming:
        """Expected wall-clock seconds for one iteration of a stage.

        ``extra_failure_probability`` folds in network-model failures
        (executor lost, fetch timeouts) on top of the memory model's OOM
        probability.  ``rng`` supplies only the residual stage noise.
        """
        slots = max(self.conf.total_task_slots, 1)
        mean = profile.mean_seconds
        tail, speculation_active, spec_overhead = self._tail_seconds(profile)

        p_fail = 1.0 - (1.0 - profile.oom_probability) * (
            1.0 - min(max(extra_failure_probability, 0.0), 0.95)
        )
        attempts, reruns = self._retry_factors(p_fail, profile.num_tasks)
        attempt_factor = 1.0 + (attempts - 1.0) * _FAILED_ATTEMPT_COST

        total_work = profile.num_tasks * mean * attempt_factor
        tail *= attempt_factor
        if profile.num_tasks <= slots:
            makespan = tail
            waves = 1
        else:
            waves = int(math.ceil(profile.num_tasks / slots))
            makespan = total_work / slots + tail * (1.0 - 1.0 / slots)

        # Scheduling latency: dispatch cost per task (driver-side, akka
        # threads) + revive-interval and locality-wait delays per wave.
        dispatch = profile.num_tasks * self._dispatch_seconds_per_task()
        per_wave_latency = (
            0.3 * self.conf.revive_interval + 0.08 * self.conf.locality_wait
        )
        makespan += dispatch + waves * per_wave_latency + spec_overhead

        makespan *= reruns
        makespan *= float(rng.lognormal(mean=0.0, sigma=_STAGE_NOISE_SIGMA))
        gc_total = profile.gc_seconds * profile.num_tasks * attempt_factor * reruns
        return StageTiming(
            seconds=float(makespan),
            gc_seconds=float(gc_total),
            expected_attempts_per_task=float(attempts),
            job_rerun_factor=float(reruns),
            speculation_active=speculation_active,
        )

    def _dispatch_seconds_per_task(self) -> float:
        threads = min(self.conf.akka_threads, self.conf.driver_cores * 2)
        return 0.0012 / max(threads, 1)


def _normal_quantile(p: float) -> float:
    """Standard normal inverse CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )
