"""Discrete-event stage scheduler: the analytic model's ground truth.

:mod:`repro.sparksim.scheduler` computes stage makespans in expectation
(order statistics + work-conserving bounds).  This module implements the
same scheduling semantics *exactly*: per-task durations are sampled,
tasks are list-scheduled onto executor slots with a priority queue,
speculative copies launch when the configured conditions hold, and the
makespan is read off the event clock.

It exists for validation (tests assert the analytic makespan tracks the
event-driven one within tolerance across configurations) and for users
who want task-level timelines — :func:`simulate_stage` returns every
task's start/finish for Gantt-style inspection.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sparksim.config import SparkConf
from repro.sparksim.scheduler import (
    _STRAGGLER_FACTOR,
    _STRAGGLER_PROBABILITY,
)
from repro.sparksim.task import TaskProfile


@dataclass(frozen=True)
class TaskEvent:
    """One task attempt's placement in the stage timeline."""

    task_id: int
    start: float
    finish: float
    speculative: bool = False


@dataclass(frozen=True)
class StageTimeline:
    """Full event-level account of one stage execution."""

    makespan: float
    events: Tuple[TaskEvent, ...]
    speculative_copies: int

    @property
    def num_tasks(self) -> int:
        return len({e.task_id for e in self.events})

    def utilization(self, slots: float) -> float:
        """Busy slot-seconds over available slot-seconds."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(e.finish - e.start for e in self.events)
        return float(busy / (slots * self.makespan))


def draw_task_times(
    profile: TaskProfile, rng: np.random.Generator
) -> np.ndarray:
    """Per-task durations matching the analytic model's assumptions:
    log-normal skew around the mean (normalized to preserve the mean),
    plus rare hardware stragglers with the scheduler's parameters."""
    sigma = max(profile.skew, 1e-3)
    noise = rng.lognormal(
        mean=-0.5 * sigma * sigma, sigma=sigma, size=profile.num_tasks
    )
    times = profile.mean_seconds * noise
    stragglers = rng.random(profile.num_tasks) < _STRAGGLER_PROBABILITY
    if stragglers.any():
        times[stragglers] *= _STRAGGLER_FACTOR
    return times


def simulate_stage(
    profile: TaskProfile,
    conf: SparkConf,
    rng: np.random.Generator,
    task_times: Optional[np.ndarray] = None,
) -> StageTimeline:
    """Exact list-scheduling of one stage iteration.

    Tasks launch in index order onto the earliest-free slot, paying the
    per-task dispatch latency and the per-wave revive/locality delays
    the analytic model charges.  With ``spark.speculation`` on, once the
    completion quantile is reached, any running task whose elapsed time
    exceeds ``multiplier x median(done)`` gets one speculative copy; the
    task finishes at the earlier of the two attempts.
    """
    slots = max(int(conf.total_task_slots), 1)
    times = draw_task_times(profile, rng) if task_times is None else np.asarray(
        task_times, dtype=float
    )
    n = len(times)
    if n == 0:
        return StageTimeline(makespan=0.0, events=(), speculative_copies=0)

    dispatch = 0.0012 / max(min(conf.akka_threads, conf.driver_cores * 2), 1)
    wave_latency = 0.3 * conf.revive_interval + 0.08 * conf.locality_wait

    # slot_free[i] = when slot i next becomes idle.
    slot_free = [0.0] * slots
    heapq.heapify(slot_free)
    events: List[TaskEvent] = []
    finish_times = np.empty(n)

    for task_id in range(n):
        free_at = heapq.heappop(slot_free)
        start = free_at + dispatch
        if task_id < slots:
            start += wave_latency  # first wave pays the initial offer delay
        finish = start + times[task_id]
        events.append(TaskEvent(task_id=task_id, start=start, finish=finish))
        finish_times[task_id] = finish
        heapq.heappush(slot_free, finish)

    speculative = 0
    if conf.speculation and n >= 2:
        quantile = min(max(conf.speculation_quantile, 0.0), 0.999)
        sorted_finish = np.sort(finish_times)
        launch_clock = float(sorted_finish[int(quantile * (n - 1))])
        median_time = float(np.median(times))
        threshold = median_time * conf.speculation_multiplier
        for event in list(events):
            duration = event.finish - event.start
            if event.finish > launch_clock and duration > threshold:
                # The copy launches once both the quantile is reached and
                # the original's elapsed time crosses the threshold; it
                # runs a fresh median-ish duration.
                copy_start = max(launch_clock, event.start + threshold)
                copy_duration = median_time * float(
                    np.clip(1.0 + 0.1 * rng.standard_normal(), 0.5, 2.0)
                )
                copy_finish = copy_start + copy_duration
                if copy_finish < event.finish:
                    events.remove(event)
                    events.append(
                        TaskEvent(
                            task_id=event.task_id,
                            start=event.start,
                            finish=copy_finish,
                            speculative=True,
                        )
                    )
                    finish_times[event.task_id] = copy_finish
                    speculative += 1

    makespan = float(max(e.finish for e in events))
    return StageTimeline(
        makespan=makespan, events=tuple(events), speculative_copies=speculative
    )


def expected_makespan(
    profile: TaskProfile,
    conf: SparkConf,
    rng: np.random.Generator,
    replications: int = 25,
) -> float:
    """Monte-Carlo estimate of the true expected makespan.

    Used by validation tests as the reference the analytic scheduler
    must track.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    total = 0.0
    for _ in range(replications):
        total += simulate_stage(profile, conf, rng).makespan
    return total / replications
