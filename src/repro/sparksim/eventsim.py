"""Discrete-event stage scheduler: the analytic model's ground truth.

:mod:`repro.sparksim.scheduler` computes stage makespans in expectation
(order statistics + work-conserving bounds).  This module implements the
same scheduling semantics *exactly*: per-task durations are sampled,
tasks are list-scheduled onto executor slots with a priority queue,
speculative copies launch when the configured conditions hold, and the
makespan is read off the event clock.

It exists for validation (tests assert the analytic makespan tracks the
event-driven one within tolerance across configurations) and for users
who want task-level timelines — :func:`simulate_stage` returns every
task's start/finish for Gantt-style inspection.

Two implementations coexist:

* :func:`simulate_stage` — one replication with a full event timeline.
  Slot placement stays a heap loop (it is inherently sequential), but
  the speculative-copy scan is vectorized and **bit-identical** to the
  original per-event loop, which is kept verbatim as
  :func:`simulate_stage_reference`: the qualifying mask enumerates
  events in the same order the loop visited them, and
  ``rng.standard_normal(m)`` produces the exact values ``m`` scalar
  draws would have.
* :func:`simulate_replications` — ``R`` replications as one batch over
  an ``(R, slots)`` state matrix.  Given the same duration matrix it
  reproduces the per-replication loop bit-for-bit (the heap pop only
  ever exposes the *minimum* slot-free time, which ``argmin`` recovers,
  and speculation draws happen in replication-major task order — the
  same order a shared-RNG loop over replications consumes).
  :func:`expected_makespan` runs through it by default; drawing all
  task durations up front does reorder the *sampling* stream relative
  to the old interleaved loop, so the Monte-Carlo estimate is
  statistically (not bitwise) equivalent — ``batch=False`` retains the
  original loop.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sparksim.config import SparkConf
from repro.sparksim.scheduler import (
    _STRAGGLER_FACTOR,
    _STRAGGLER_PROBABILITY,
)
from repro.sparksim.task import TaskProfile


@dataclass(frozen=True)
class TaskEvent:
    """One task attempt's placement in the stage timeline."""

    task_id: int
    start: float
    finish: float
    speculative: bool = False


@dataclass(frozen=True)
class StageTimeline:
    """Full event-level account of one stage execution."""

    makespan: float
    events: Tuple[TaskEvent, ...]
    speculative_copies: int

    @property
    def num_tasks(self) -> int:
        return len({e.task_id for e in self.events})

    def utilization(self, slots: float) -> float:
        """Busy slot-seconds over available slot-seconds."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(e.finish - e.start for e in self.events)
        return float(busy / (slots * self.makespan))


def draw_task_times(
    profile: TaskProfile, rng: np.random.Generator
) -> np.ndarray:
    """Per-task durations matching the analytic model's assumptions:
    log-normal skew around the mean (normalized to preserve the mean),
    plus rare hardware stragglers with the scheduler's parameters."""
    sigma = max(profile.skew, 1e-3)
    noise = rng.lognormal(
        mean=-0.5 * sigma * sigma, sigma=sigma, size=profile.num_tasks
    )
    times = profile.mean_seconds * noise
    stragglers = rng.random(profile.num_tasks) < _STRAGGLER_PROBABILITY
    if stragglers.any():
        times[stragglers] *= _STRAGGLER_FACTOR
    return times


def _stage_constants(conf: SparkConf) -> Tuple[int, float, float]:
    """(slots, per-task dispatch latency, first-wave latency)."""
    slots = max(int(conf.total_task_slots), 1)
    dispatch = 0.0012 / max(min(conf.akka_threads, conf.driver_cores * 2), 1)
    wave_latency = 0.3 * conf.revive_interval + 0.08 * conf.locality_wait
    return slots, dispatch, wave_latency


def simulate_stage(
    profile: TaskProfile,
    conf: SparkConf,
    rng: np.random.Generator,
    task_times: Optional[np.ndarray] = None,
) -> StageTimeline:
    """Exact list-scheduling of one stage iteration.

    Tasks launch in index order onto the earliest-free slot, paying the
    per-task dispatch latency and the per-wave revive/locality delays
    the analytic model charges.  With ``spark.speculation`` on, once the
    completion quantile is reached, any running task whose elapsed time
    exceeds ``multiplier x median(done)`` gets one speculative copy; the
    task finishes at the earlier of the two attempts.

    Bit-identical to :func:`simulate_stage_reference` (same timeline,
    same RNG consumption); the speculative scan runs vectorized instead
    of as a quadratic ``list.remove`` loop.
    """
    slots, dispatch, wave_latency = _stage_constants(conf)
    times = draw_task_times(profile, rng) if task_times is None else np.asarray(
        task_times, dtype=float
    )
    n = len(times)
    if n == 0:
        return StageTimeline(makespan=0.0, events=(), speculative_copies=0)

    # slot_free[i] = when slot i next becomes idle.
    slot_free = [0.0] * slots
    heapq.heapify(slot_free)
    events: List[TaskEvent] = []
    finish_times = np.empty(n)

    for task_id in range(n):
        free_at = heapq.heappop(slot_free)
        start = free_at + dispatch
        if task_id < slots:
            start += wave_latency  # first wave pays the initial offer delay
        finish = start + times[task_id]
        events.append(TaskEvent(task_id=task_id, start=start, finish=finish))
        finish_times[task_id] = finish
        heapq.heappush(slot_free, finish)

    speculative = 0
    if conf.speculation and n >= 2:
        quantile = min(max(conf.speculation_quantile, 0.0), 0.999)
        sorted_finish = np.sort(finish_times)
        launch_clock = float(sorted_finish[int(quantile * (n - 1))])
        median_time = float(np.median(times))
        threshold = median_time * conf.speculation_multiplier

        # The reference walked the event list (task order), drew one
        # normal per *qualifying* event, and moved improved events to
        # the tail in scan order.  Reproduce exactly: mask in the same
        # order, one batched draw (a Generator's standard_normal(m)
        # equals m scalar draws), same per-copy arithmetic.
        starts = np.array([e.start for e in events])
        finishes = np.array([e.finish for e in events])
        qualifying = np.flatnonzero(
            (finishes > launch_clock) & (finishes - starts > threshold)
        )
        if len(qualifying):
            copy_starts = np.maximum(launch_clock, starts[qualifying] + threshold)
            copy_durations = median_time * np.clip(
                1.0 + 0.1 * rng.standard_normal(len(qualifying)), 0.5, 2.0
            )
            copy_finishes = copy_starts + copy_durations
            improved = qualifying[copy_finishes < finishes[qualifying]]
            if len(improved):
                replacements = [
                    TaskEvent(
                        task_id=events[i].task_id,
                        start=events[i].start,
                        finish=float(copy_finishes[pos]),
                        speculative=True,
                    )
                    for pos, i in zip(
                        np.flatnonzero(copy_finishes < finishes[qualifying]),
                        improved,
                    )
                ]
                improved_set = set(improved.tolist())
                events = [
                    e for i, e in enumerate(events) if i not in improved_set
                ] + replacements
                speculative = len(replacements)

    makespan = float(max(e.finish for e in events))
    return StageTimeline(
        makespan=makespan, events=tuple(events), speculative_copies=speculative
    )


def simulate_stage_reference(
    profile: TaskProfile,
    conf: SparkConf,
    rng: np.random.Generator,
    task_times: Optional[np.ndarray] = None,
) -> StageTimeline:
    """The original per-event speculative scan, kept verbatim.

    Equivalence tests run the same inputs through this and
    :func:`simulate_stage` and require identical timelines and RNG
    states.
    """
    slots = max(int(conf.total_task_slots), 1)
    times = draw_task_times(profile, rng) if task_times is None else np.asarray(
        task_times, dtype=float
    )
    n = len(times)
    if n == 0:
        return StageTimeline(makespan=0.0, events=(), speculative_copies=0)

    dispatch = 0.0012 / max(min(conf.akka_threads, conf.driver_cores * 2), 1)
    wave_latency = 0.3 * conf.revive_interval + 0.08 * conf.locality_wait

    # slot_free[i] = when slot i next becomes idle.
    slot_free = [0.0] * slots
    heapq.heapify(slot_free)
    events: List[TaskEvent] = []
    finish_times = np.empty(n)

    for task_id in range(n):
        free_at = heapq.heappop(slot_free)
        start = free_at + dispatch
        if task_id < slots:
            start += wave_latency  # first wave pays the initial offer delay
        finish = start + times[task_id]
        events.append(TaskEvent(task_id=task_id, start=start, finish=finish))
        finish_times[task_id] = finish
        heapq.heappush(slot_free, finish)

    speculative = 0
    if conf.speculation and n >= 2:
        quantile = min(max(conf.speculation_quantile, 0.0), 0.999)
        sorted_finish = np.sort(finish_times)
        launch_clock = float(sorted_finish[int(quantile * (n - 1))])
        median_time = float(np.median(times))
        threshold = median_time * conf.speculation_multiplier
        for event in list(events):
            duration = event.finish - event.start
            if event.finish > launch_clock and duration > threshold:
                # The copy launches once both the quantile is reached and
                # the original's elapsed time crosses the threshold; it
                # runs a fresh median-ish duration.
                copy_start = max(launch_clock, event.start + threshold)
                copy_duration = median_time * float(
                    np.clip(1.0 + 0.1 * rng.standard_normal(), 0.5, 2.0)
                )
                copy_finish = copy_start + copy_duration
                if copy_finish < event.finish:
                    events.remove(event)
                    events.append(
                        TaskEvent(
                            task_id=event.task_id,
                            start=event.start,
                            finish=copy_finish,
                            speculative=True,
                        )
                    )
                    finish_times[event.task_id] = copy_finish
                    speculative += 1

    makespan = float(max(e.finish for e in events))
    return StageTimeline(
        makespan=makespan, events=tuple(events), speculative_copies=speculative
    )


def simulate_replications(
    profile: TaskProfile,
    conf: SparkConf,
    rng: np.random.Generator,
    replications: int,
    task_times: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Makespans of ``replications`` independent stage executions, batched.

    One ``(replications, slots)`` slot-free matrix replaces
    ``replications`` separate heaps: per task, ``argmin`` over each
    row recovers exactly the value a heap pop would have exposed (ties
    may pick a different slot *index*, but every min-valued slot yields
    the same start/finish sequence, so the timelines are identical).
    Speculation is evaluated for all replications at once; qualifying
    copies draw their normals in replication-major task order — the
    same order a loop over :func:`simulate_stage` sharing this ``rng``
    would consume — so for a given ``task_times`` matrix the result is
    bit-identical to that loop.

    ``task_times`` may be ``(replications, n)``, or ``(n,)`` to reuse
    one duration vector everywhere; when omitted, durations are drawn
    here in one batch (statistically, not bitwise, matching the
    sequential loop's interleaved draws).
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    slots, dispatch, wave_latency = _stage_constants(conf)
    if task_times is None:
        sigma = max(profile.skew, 1e-3)
        noise = rng.lognormal(
            mean=-0.5 * sigma * sigma,
            sigma=sigma,
            size=(replications, profile.num_tasks),
        )
        times = profile.mean_seconds * noise
        stragglers = (
            rng.random((replications, profile.num_tasks)) < _STRAGGLER_PROBABILITY
        )
        times[stragglers] *= _STRAGGLER_FACTOR
    else:
        task_times = np.asarray(task_times, dtype=float)
        if task_times.ndim == 1:
            times = np.broadcast_to(
                task_times, (replications, len(task_times))
            )
        elif task_times.shape[0] == replications:
            times = task_times
        else:
            raise ValueError(
                "task_times must be (n,) or (replications, n)"
            )
    n = times.shape[1]
    if n == 0:
        return np.zeros(replications)

    reps = np.arange(replications)
    slot_free = np.zeros((replications, slots))
    starts = np.empty((replications, n))
    finishes = np.empty((replications, n))
    for task_id in range(n):
        j = np.argmin(slot_free, axis=1)
        start = slot_free[reps, j] + dispatch
        if task_id < slots:
            start = start + wave_latency
        finish = start + times[:, task_id]
        slot_free[reps, j] = finish
        starts[:, task_id] = start
        finishes[:, task_id] = finish

    if conf.speculation and n >= 2:
        quantile = min(max(conf.speculation_quantile, 0.0), 0.999)
        launch = np.sort(finishes, axis=1)[:, int(quantile * (n - 1))]
        median_time = np.median(times, axis=1)
        threshold = median_time * conf.speculation_multiplier
        qualifying = np.flatnonzero(
            (finishes > launch[:, None])
            & (finishes - starts > threshold[:, None])
        )  # C-order flattening = replication-major, task order within
        if len(qualifying):
            rep_of = qualifying // n
            copy_start = np.maximum(
                launch[rep_of], starts.ravel()[qualifying] + threshold[rep_of]
            )
            copy_finish = copy_start + median_time[rep_of] * np.clip(
                1.0 + 0.1 * rng.standard_normal(len(qualifying)), 0.5, 2.0
            )
            improved = copy_finish < finishes.ravel()[qualifying]
            finishes = finishes.copy()
            finishes.ravel()[qualifying[improved]] = copy_finish[improved]

    return finishes.max(axis=1)


def expected_makespan(
    profile: TaskProfile,
    conf: SparkConf,
    rng: np.random.Generator,
    replications: int = 25,
    batch: bool = True,
) -> float:
    """Monte-Carlo estimate of the true expected makespan.

    Used by validation tests as the reference the analytic scheduler
    must track.  ``batch=True`` (default) runs the replications through
    :func:`simulate_replications`; ``batch=False`` keeps the original
    one-at-a-time loop (a different — interleaved — draw order, so the
    two estimates agree statistically, not bitwise).
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    if batch:
        return float(np.mean(simulate_replications(profile, conf, rng, replications)))
    total = 0.0
    for _ in range(replications):
        total += simulate_stage(profile, conf, rng).makespan
    return total / replications
