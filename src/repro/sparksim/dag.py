"""Job descriptions: a DAG of stages with concrete byte volumes.

A workload (``repro.workloads``) compiles a (program, dataset size) pair
down to a :class:`JobSpec`: a DAG of :class:`StageSpec` nodes with fully
resolved byte counts — exactly the granularity Spark's DAGScheduler sees
after splitting a job at its shuffle boundaries (Figure 1 of the paper).

Byte-flow conventions
---------------------
* ``input_bytes`` is raw data read from HDFS (or from a cached RDD when
  ``reads_cached`` names one).
* A stage's shuffle input is the sum of its parents' shuffle output
  (``shuffle_out_bytes``).
* ``processed_bytes = input + shuffle-in`` is the raw volume the stage's
  tasks churn through; CPU, serialization, GC allocation and the
  execution-memory working set all scale from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class StageSpec:
    """One stage of a Spark job, with concrete volumes.

    Attributes
    ----------
    name:
        Unique stage name within the job.
    parents:
        Names of stages whose shuffle output this stage consumes.
    input_bytes:
        Raw bytes read from HDFS by this stage's tasks.
    shuffle_out_ratio:
        Shuffle bytes produced per processed byte (0 for result stages).
    cpu_seconds_per_mb:
        Pure computation cost per MB of processed data on one core —
        the workload trait (WordCount is CPU-light per byte, NWeight's
        graph traversal is heavy).
    working_set_factor:
        Execution-memory demand per processed byte *after* deserialized
        expansion (hash aggregation tables, sort buffers, graph
        adjacency).  1.0 means the task materializes its whole partition.
    repeat:
        The stage body runs this many times (iterative stages such as
        KMeans' aggregate/collect loop).  Shuffle volumes apply per
        iteration.
    cache_output / reads_cached:
        RDD caching: a stage may publish its output under a cache key and
        later stages may iterate over it without re-reading HDFS (unless
        evicted, in which case the simulator charges recompute).
    map_side_combine:
        Whether the shuffle write aggregates map-side (disables the
        sort-bypass path, reduces shuffle volume upstream of the ratio).
    collect_bytes:
        Result bytes returned to the driver per iteration.
    broadcast_bytes:
        Bytes the driver broadcasts to executors per iteration (e.g.
        KMeans centroids).
    record_bytes:
        Typical record size, exposing kryo max-buffer failures for
        large-record workloads.
    skew:
        Log-normal sigma of per-task time variation (data skew /
        hardware noise); drives straggler length and speculation value.
    user_state_bytes:
        Long-lived per-task user objects held in the user memory region.
    unspillable_fraction:
        Fraction of the working set pinned in un-spillable structures.
        Streaming/sorting stages spill gracefully (low values); hash
        aggregation and groupBy stages pin the current groups in memory
        (0.25-0.35), which is what makes them OOM under tiny heaps.
    """

    name: str
    parents: Tuple[str, ...] = ()
    input_bytes: float = 0.0
    shuffle_out_ratio: float = 0.0
    cpu_seconds_per_mb: float = 0.01
    working_set_factor: float = 0.6
    repeat: int = 1
    cache_output: Optional[str] = None
    reads_cached: Optional[str] = None
    map_side_combine: bool = False
    output_bytes: float = 0.0
    collect_bytes: float = 0.0
    broadcast_bytes: float = 0.0
    record_bytes: float = 256.0
    skew: float = 0.18
    user_state_bytes: float = 8.0 * 1024 * 1024
    unspillable_fraction: float = 0.08

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError(f"stage {self.name}: repeat must be >= 1")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError(f"stage {self.name}: negative byte volume")
        if not (0.0 <= self.shuffle_out_ratio <= 20.0):
            raise ValueError(f"stage {self.name}: implausible shuffle ratio")


@dataclass(frozen=True)
class JobSpec:
    """A full job: named stages wired into a DAG.

    ``program`` and ``datasize_bytes`` identify the program-input pair
    (Section 3.1's ``Pv`` vectors) and seed the simulator's noise.
    """

    program: str
    datasize_bytes: float
    stages: Tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError("duplicate stage names")
        known = set(names)
        for stage in self.stages:
            for parent in stage.parents:
                if parent not in known:
                    raise ValueError(
                        f"stage {stage.name} depends on unknown stage {parent}"
                    )
        if not self.stages:
            raise ValueError("job needs at least one stage")
        graph = self.graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("stage dependencies contain a cycle")

    def graph(self) -> nx.DiGraph:
        """The stage DAG (edges parent -> child)."""
        graph = nx.DiGraph()
        for stage in self.stages:
            graph.add_node(stage.name, spec=stage)
        for stage in self.stages:
            for parent in stage.parents:
                graph.add_edge(parent, stage.name)
        return graph

    def topological_stages(self) -> List[StageSpec]:
        """Stages in a valid execution order."""
        by_name = {s.name: s for s in self.stages}
        order = nx.lexicographical_topological_sort(self.graph())
        return [by_name[name] for name in order]

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    @property
    def total_input_bytes(self) -> float:
        return sum(s.input_bytes for s in self.stages)
