"""Shared-cluster scenarios: N jobs contending for one executor pool.

The paper (and the rest of ``sparksim``) measures one job at a time on
an idle cluster.  This module models the situation the tuning service
actually faces: jobs arrive over time (:mod:`repro.sparksim.arrivals`),
queue for executors under a FIFO or fair policy, slow each other down
through shared I/O, run on heterogeneously fast nodes, straggle, and
occasionally lose executors to spot revocations.

The model is deliberately two-level.  Each job's *isolated* behaviour
comes from one ordinary :class:`~repro.sparksim.simulator.SparkSimulator`
run (executed through the engine, so backends and caches apply); the
scenario layer then replays those jobs as fluid work against the shared
pool with a piecewise-constant-rate event loop: between events a job
with ``granted`` of its ``demand`` slots progresses at

    rate = (granted / demand) * node_speed
           / (straggler_factor * (1 + c * io_fraction * others / slots))

so ``finish - start == isolated seconds`` exactly when a job runs alone
at full demand on unit-speed nodes.  Everything stochastic was drawn at
trace-generation time, which makes :func:`simulate` pure: one
``(TraceSpec, seed)`` pair produces a bit-identical
:class:`ScenarioReport` on any backend — :func:`scenario_fingerprint`
is the equality test, mirroring the store's ``report_fingerprint``.

:class:`InterferenceBackend` closes the loop back to the tuner: it is
an :class:`~repro.engine.backends.ExecutionBackend` that rewrites every
measurement into the target job's completion time (queueing included)
when injected into a fixed background scenario — so the unchanged DAC
collect→fit→search pipeline tunes *under interference*.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.space import ConfigurationSpace
from repro.engine.backends import ExecutionBackend, InProcessBackend
from repro.engine.request import ExecOutcome, ExecRequest, require_success
from repro.sparksim.arrivals import (
    FAIR,
    FIFO,
    JobTemplate,
    Revocation,
    Trace,
    TraceSpec,
    generate_trace,
    resolve_revocations,
)
from repro.sparksim.cluster import PAPER_CLUSTER, ClusterSpec
from repro.sparksim.config import SparkConf
from repro.sparksim.confspace import SPARK_CONF_SPACE
from repro.sparksim.events import (
    SCENARIO_JOB_ARRIVED,
    SCENARIO_JOB_FINISHED,
    SCENARIO_JOB_STARTED,
    SCENARIO_REVOCATION,
    SCENARIO_SPAN,
)
from repro.store.artifacts import payload_digest
from repro.telemetry import events as tele

#: Relative tolerance for "this job's remaining work is zero".
_FINISH_EPS = 1e-9

Observer = Callable[..., None]


# ----------------------------------------------------------------------
# The pure core: loads, allocation, and the event loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobLoad:
    """One job as the shared pool sees it.

    ``isolated_s`` is the job's run time alone at full ``demand`` on
    unit-speed nodes (its total work, in seconds); ``io_fraction`` is
    the share of its core-seconds spent on disk/shuffle, which sets how
    hard co-runners hurt it.
    """

    job_id: str
    arrival_s: float
    demand: int
    isolated_s: float
    straggler_factor: float = 1.0
    io_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.demand < 1:
            raise ValueError(f"{self.job_id}: demand must be >= 1")
        if self.isolated_s <= 0:
            raise ValueError(f"{self.job_id}: isolated_s must be positive")
        if self.arrival_s < 0:
            raise ValueError(f"{self.job_id}: arrival_s must be >= 0")
        if self.straggler_factor < 1.0:
            raise ValueError(f"{self.job_id}: straggler_factor must be >= 1")
        if not 0.0 <= self.io_fraction <= 1.0:
            raise ValueError(f"{self.job_id}: io_fraction must be in [0, 1]")


@dataclass(frozen=True)
class SimOutcome:
    """What the event loop observed for one job."""

    job_id: str
    start_s: float
    finish_s: float
    busy_executor_s: float
    revocation_hits: int


def allocate(
    jobs: Sequence[Tuple[str, int, bool]], capacity: int, policy: str
) -> Dict[str, int]:
    """Grant executors to arrived jobs, in arrival order.

    ``jobs`` is ``(job_id, demand, already_started)`` triples.  FIFO
    gives each job its full capped demand in order and stops granting
    *unstarted* jobs at the first one that does not fit (head-of-line
    queueing); already-started jobs degrade gracefully to whatever is
    free instead of being paused outright (what matters under
    revocation).  FAIR water-fills one slot at a time, round-robin in
    arrival order, capped at each job's demand.
    """
    grants: Dict[str, int] = {job_id: 0 for job_id, _, _ in jobs}
    if len(grants) != len(jobs):
        raise ValueError("duplicate job ids in allocation request")
    if capacity <= 0:
        return grants
    free = capacity
    if policy == FIFO:
        blocked = False
        for job_id, demand, started in jobs:
            want = min(demand, capacity)
            if started:
                granted = min(want, free)
                grants[job_id] = granted
                free -= granted
            elif not blocked:
                if want <= free:
                    grants[job_id] = want
                    free -= want
                else:
                    blocked = True
    elif policy == FAIR:
        want = {job_id: min(demand, capacity) for job_id, demand, _ in jobs}
        progress = True
        while free > 0 and progress:
            progress = False
            for job_id, _, _ in jobs:
                if free == 0:
                    break
                if grants[job_id] < want[job_id]:
                    grants[job_id] += 1
                    free -= 1
                    progress = True
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return grants


def simulate(
    loads: Sequence[JobLoad],
    slots: int,
    policy: str = FIFO,
    revocations: Sequence[Revocation] = (),
    interference_coefficient: float = 0.0,
    slot_speeds: Sequence[float] = (),
    rework: float = 0.5,
    observer: Optional[Observer] = None,
) -> Tuple[List[SimOutcome], float]:
    """Run the shared-pool event loop; returns per-job outcomes plus the
    pool's total busy executor-seconds (accumulated independently of the
    per-job figures, so conservation is a checkable property rather than
    an identity by construction).

    Pure: no clocks, no RNG.  ``observer(kind, **fields)``, if given,
    sees every ``arrived``/``started``/``finished``/``revocation`` event
    plus one ``alloc`` record per scheduling decision.
    """
    if slots < 1:
        raise ValueError("pool needs at least one slot")
    speeds = list(slot_speeds) if slot_speeds else [1.0] * slots
    if len(speeds) != slots:
        raise ValueError("slot_speeds must have one entry per slot")

    order = sorted(loads, key=lambda load: (load.arrival_s, load.job_id))
    state = {
        load.job_id: {
            "load": load,
            "remaining": load.isolated_s,
            "busy": 0.0,
            "started": None,
            "finished": None,
            "hits": 0,
        }
        for load in order
    }
    if len(state) != len(order):
        raise ValueError("duplicate job ids in loads")

    def emit(kind: str, **fields: object) -> None:
        if observer is not None:
            observer(kind, **fields)

    boundaries = sorted(
        {load.arrival_s for load in order}
        | {r.at_s for r in revocations}
        | {r.end_s for r in revocations}
    )
    revocation_starts = {r.at_s for r in revocations}

    t = 0.0
    pool_busy = 0.0
    announced: set = set()
    last_grants: Dict[str, int] = {}
    rework_due = False

    budget = 1000 + 200 * (len(order) + len(revocations))
    for _ in range(budget):
        for load in order:
            if load.arrival_s <= t and load.job_id not in announced:
                announced.add(load.job_id)
                emit("arrived", t=load.arrival_s, job=load.job_id)
        if all(st["finished"] is not None for st in state.values()):
            break

        revoked = sum(r.slots for r in revocations if r.at_s <= t < r.end_s)
        capacity = max(0, slots - revoked)
        active = [
            load
            for load in order
            if load.arrival_s <= t and state[load.job_id]["finished"] is None
        ]
        grants = allocate(
            [
                (
                    load.job_id,
                    load.demand,
                    state[load.job_id]["started"] is not None,
                )
                for load in active
            ],
            capacity,
            policy,
        )

        if rework_due:
            # A revocation just landed: jobs that lost part of their
            # share redo a fraction of the work completed on it.
            for load in active:
                st = state[load.job_id]
                old = last_grants.get(load.job_id, 0)
                new = grants.get(load.job_id, 0)
                done = load.isolated_s - st["remaining"]
                if old > 0 and new < old and done > 0:
                    lost = (old - new) / old
                    st["remaining"] = min(
                        load.isolated_s, st["remaining"] + rework * done * lost
                    )
                    st["hits"] += 1
            rework_due = False

        # Contiguous slot assignment from index 0 (revocation removes
        # the top of the range), so a grant's speed is the mean of the
        # node blocks it actually occupies.
        cursor = 0
        speed_of: Dict[str, float] = {}
        for load in active:
            granted = grants[load.job_id]
            if granted > 0:
                block = speeds[cursor : cursor + granted]
                speed_of[load.job_id] = sum(block) / granted
                cursor += granted

        for load in active:
            st = state[load.job_id]
            if grants[load.job_id] > 0 and st["started"] is None:
                st["started"] = t
                emit(
                    "started",
                    t=t,
                    job=load.job_id,
                    granted=grants[load.job_id],
                    queue_s=t - load.arrival_s,
                )
        emit("alloc", t=t, capacity=capacity, grants=dict(grants))

        total_granted = sum(grants.values())
        rates: Dict[str, float] = {}
        for load in active:
            granted = grants[load.job_id]
            if granted == 0:
                continue
            others = total_granted - granted
            contention = 1.0 + interference_coefficient * load.io_fraction * (
                others / slots
            )
            rates[load.job_id] = (
                (granted / load.demand)
                * speed_of[load.job_id]
                / (load.straggler_factor * contention)
            )

        t_boundary = math.inf
        for b in boundaries:
            if b > t:
                t_boundary = b
                break
        completions = {
            job_id: t + state[job_id]["remaining"] / rate
            for job_id, rate in rates.items()
            if rate > 0
        }
        t_next = min([t_boundary, *completions.values()])
        if math.isinf(t_next):
            raise RuntimeError(
                "scenario deadlock: unfinished jobs but no runnable work "
                "and no future event"
            )

        dt = max(0.0, t_next - t)
        for load in active:
            granted = grants[load.job_id]
            if granted == 0:
                continue
            st = state[load.job_id]
            st["busy"] += granted * dt
            st["remaining"] = max(0.0, st["remaining"] - rates[load.job_id] * dt)
        pool_busy += total_granted * dt
        t = t_next

        for job_id, tc in completions.items():
            st = state[job_id]
            if st["finished"] is None and tc <= t + _FINISH_EPS:
                st["remaining"] = 0.0
                st["finished"] = t
                emit("finished", t=t, job=job_id)
        for load in active:
            st = state[load.job_id]
            if (
                st["finished"] is None
                and st["remaining"] <= _FINISH_EPS * max(1.0, load.isolated_s)
            ):
                st["remaining"] = 0.0
                st["finished"] = t
                emit("finished", t=t, job=load.job_id)

        if t in revocation_starts:
            rework_due = True
            for r in revocations:
                if r.at_s == t:
                    emit("revocation", t=t, slots=r.slots, duration_s=r.duration_s)
        last_grants = grants
    else:
        raise RuntimeError("scenario simulation exceeded its event budget")

    outcomes = []
    for load in order:
        st = state[load.job_id]
        outcomes.append(
            SimOutcome(
                job_id=load.job_id,
                start_s=float(st["started"]),
                finish_s=float(st["finished"]),
                busy_executor_s=float(st["busy"]),
                revocation_hits=int(st["hits"]),
            )
        )
    return outcomes, pool_busy


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobOutcome:
    """Per-job queueing/run/slowdown breakdown in a scenario."""

    job_id: str
    program: str
    size: float
    demand: int
    arrival_s: float
    start_s: float
    finish_s: float
    isolated_s: float
    straggler_factor: float
    io_fraction: float
    busy_executor_s: float
    revocation_hits: int

    @property
    def queue_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def run_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def slowdown(self) -> float:
        """End-to-end (queue + run) time over the isolated run time."""
        return (self.finish_s - self.arrival_s) / self.isolated_s


@dataclass(frozen=True)
class ScenarioReport:
    """Everything one ``(spec, seed)`` scenario run produced."""

    spec: TraceSpec
    seed: int
    slots: int
    jobs: Tuple[JobOutcome, ...]
    revocations: Tuple[Revocation, ...]
    makespan_s: float
    pool_busy_executor_s: float

    @property
    def mean_slowdown(self) -> float:
        return sum(j.slowdown for j in self.jobs) / len(self.jobs)

    @property
    def max_slowdown(self) -> float:
        return max(j.slowdown for j in self.jobs)

    @property
    def mean_queue_s(self) -> float:
        return sum(j.queue_s for j in self.jobs) / len(self.jobs)

    @property
    def utilization(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.pool_busy_executor_s / (self.slots * self.makespan_s)


def scenario_fingerprint(report: ScenarioReport) -> str:
    """Digest of a report's semantic content (the replay equality test).

    Floats go through ``repr`` so the digest covers their exact values;
    two runs with equal fingerprints made bit-identical scheduling
    decisions.  Mirrors the store's ``report_fingerprint``.
    """
    doc = {
        "spec": report.spec.to_dict(),
        "seed": report.seed,
        "slots": report.slots,
        "jobs": [
            {
                "job_id": j.job_id,
                "program": j.program,
                "size": repr(j.size),
                "demand": j.demand,
                "arrival_s": repr(j.arrival_s),
                "start_s": repr(j.start_s),
                "finish_s": repr(j.finish_s),
                "isolated_s": repr(j.isolated_s),
                "straggler_factor": repr(j.straggler_factor),
                "io_fraction": repr(j.io_fraction),
                "busy_executor_s": repr(j.busy_executor_s),
                "revocation_hits": j.revocation_hits,
            }
            for j in report.jobs
        ],
        "revocations": [
            [repr(r.at_s), r.slots, repr(r.duration_s)] for r in report.revocations
        ],
        "makespan_s": repr(report.makespan_s),
        "pool_busy_executor_s": repr(report.pool_busy_executor_s),
    }
    return payload_digest(json.dumps(doc, sort_keys=True).encode("utf-8"))


def report_to_dict(report: ScenarioReport) -> Dict[str, object]:
    """JSON document for one report; embeds the spec and seed so a saved
    report is replayable on its own, plus the fingerprint for quick
    comparison."""
    return {
        "spec": report.spec.to_dict(),
        "seed": report.seed,
        "slots": report.slots,
        "jobs": [
            {
                "job_id": j.job_id,
                "program": j.program,
                "size": j.size,
                "demand": j.demand,
                "arrival_s": j.arrival_s,
                "start_s": j.start_s,
                "finish_s": j.finish_s,
                "isolated_s": j.isolated_s,
                "straggler_factor": j.straggler_factor,
                "io_fraction": j.io_fraction,
                "busy_executor_s": j.busy_executor_s,
                "revocation_hits": j.revocation_hits,
            }
            for j in report.jobs
        ],
        "revocations": [
            {"at_s": r.at_s, "slots": r.slots, "duration_s": r.duration_s}
            for r in report.revocations
        ],
        "makespan_s": report.makespan_s,
        "pool_busy_executor_s": report.pool_busy_executor_s,
        "fingerprint": scenario_fingerprint(report),
    }


def report_from_dict(doc: Dict[str, object]) -> ScenarioReport:
    """Rebuild a report from :func:`report_to_dict` output.  JSON floats
    round-trip exactly, so the rebuilt report's fingerprint equals the
    original's."""
    return ScenarioReport(
        spec=TraceSpec.from_dict(doc["spec"]),
        seed=int(doc["seed"]),
        slots=int(doc["slots"]),
        jobs=tuple(
            JobOutcome(
                job_id=str(j["job_id"]),
                program=str(j["program"]),
                size=float(j["size"]),
                demand=int(j["demand"]),
                arrival_s=float(j["arrival_s"]),
                start_s=float(j["start_s"]),
                finish_s=float(j["finish_s"]),
                isolated_s=float(j["isolated_s"]),
                straggler_factor=float(j["straggler_factor"]),
                io_fraction=float(j["io_fraction"]),
                busy_executor_s=float(j["busy_executor_s"]),
                revocation_hits=int(j["revocation_hits"]),
            )
            for j in doc["jobs"]
        ),
        revocations=tuple(
            Revocation(
                at_s=float(r["at_s"]),
                slots=int(r["slots"]),
                duration_s=float(r["duration_s"]),
            )
            for r in doc["revocations"]
        ),
        makespan_s=float(doc["makespan_s"]),
        pool_busy_executor_s=float(doc["pool_busy_executor_s"]),
    )


def render_scenario_report(report: ScenarioReport) -> str:
    """Human-readable per-job table plus pool summary."""
    header = (
        f"{'job':<10} {'prog':<5} {'demand':>6} {'arrive':>8} {'queue':>8} "
        f"{'run':>8} {'slowdown':>8} {'revoked':>7}"
    )
    lines = [
        f"scenario {report.spec.name!r} seed={report.seed} "
        f"policy={report.spec.policy} slots={report.slots} "
        f"jobs={len(report.jobs)}",
        header,
        "-" * len(header),
    ]
    for j in report.jobs:
        lines.append(
            f"{j.job_id:<10} {j.program:<5} {j.demand:>6d} {j.arrival_s:>8.1f} "
            f"{j.queue_s:>8.1f} {j.run_s:>8.1f} {j.slowdown:>8.2f} "
            f"{j.revocation_hits:>7d}"
        )
    lines.append(
        f"makespan {report.makespan_s:.1f}s  "
        f"mean slowdown {report.mean_slowdown:.2f}  "
        f"max {report.max_slowdown:.2f}  "
        f"mean queue {report.mean_queue_s:.1f}s  "
        f"utilization {report.utilization:.0%}  "
        f"revocations {len(report.revocations)}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The runner: traces -> isolated runs -> shared-pool replay
# ----------------------------------------------------------------------
def _slot_speeds(factors: Sequence[float], slots: int) -> Tuple[float, ...]:
    """Expand per-node speed factors into per-slot speeds: the pool
    divides into equal contiguous blocks, one per node."""
    if not factors:
        return ()
    n = len(factors)
    return tuple(factors[min(i * n // slots, n - 1)] for i in range(slots))


def demand_for(config, cluster: ClusterSpec, slots: int) -> int:
    """Executor slots a configuration asks the shared pool for.

    The configuration's total task slots (executor packing x cores per
    executor), rounded and capped at the pool — the knob that makes
    idle-optimal configurations over-provision under contention.
    """
    conf = config if isinstance(config, SparkConf) else SparkConf(config, cluster)
    return max(1, min(slots, int(round(conf.total_task_slots))))


def io_fraction_of(run) -> float:
    """Share of a run's core-seconds spent on disk and shuffle I/O."""
    compute = sum(s.compute_core_seconds for s in run.stages)
    io = sum(s.io_core_seconds for s in run.stages)
    shuffle = sum(s.shuffle_core_seconds for s in run.stages)
    total = compute + io + shuffle
    if total <= 0:
        return 0.0
    return min(1.0, max(0.0, (io + shuffle) / total))


class ScenarioRunner:
    """Runs a :class:`TraceSpec` end to end against an engine."""

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        engine: Optional[ExecutionBackend] = None,
        space: ConfigurationSpace = SPARK_CONF_SPACE,
    ):
        self.cluster = cluster
        self.engine = engine if engine is not None else InProcessBackend(cluster)
        self.space = space

    def slots_for(self, spec: TraceSpec) -> int:
        return (
            spec.executor_slots
            if spec.executor_slots is not None
            else self.cluster.total_cores
        )

    def job_loads(self, trace: Trace) -> List[JobLoad]:
        """Isolated measurements for every arrival, as one engine batch.

        One ``submit`` call covers the whole trace, so process-pool and
        in-process backends see identical batches and (by the engine's
        determinism contract) produce identical loads.
        """
        from repro.workloads import get_workload

        slots = self.slots_for(trace.spec)
        requests = [
            ExecRequest(
                job=get_workload(arrival.program).job(arrival.size),
                config=arrival.config,
            )
            for arrival in trace.arrivals
        ]
        runs = require_success(self.engine.submit(requests))
        loads = []
        for arrival, run in zip(trace.arrivals, runs):
            loads.append(
                JobLoad(
                    job_id=arrival.job_id,
                    arrival_s=arrival.arrival_s,
                    demand=demand_for(arrival.config, self.cluster, slots),
                    isolated_s=run.seconds,
                    straggler_factor=arrival.straggler_factor,
                    io_fraction=io_fraction_of(run),
                )
            )
        return loads

    def run(self, spec: TraceSpec, seed: int = 0) -> ScenarioReport:
        trace = generate_trace(spec, seed, space=self.space)
        slots = self.slots_for(spec)
        loads = self.job_loads(trace)
        revocations = resolve_revocations(trace, slots)
        observer = _telemetry_observer(spec.name) if tele.enabled() else None
        with tele.span(
            SCENARIO_SPAN,
            trace=spec.name,
            seed=seed,
            jobs=len(loads),
            policy=spec.policy,
            slots=slots,
        ):
            outcomes, pool_busy = simulate(
                loads,
                slots,
                policy=spec.policy,
                revocations=revocations,
                interference_coefficient=spec.interference_coefficient,
                slot_speeds=_slot_speeds(spec.node_speed_factors, slots),
                rework=spec.revocation_rework,
                observer=observer,
            )
        by_id = {load.job_id: load for load in loads}
        arrivals = {arrival.job_id: arrival for arrival in trace.arrivals}
        jobs = tuple(
            JobOutcome(
                job_id=o.job_id,
                program=arrivals[o.job_id].program,
                size=arrivals[o.job_id].size,
                demand=by_id[o.job_id].demand,
                arrival_s=by_id[o.job_id].arrival_s,
                start_s=o.start_s,
                finish_s=o.finish_s,
                isolated_s=by_id[o.job_id].isolated_s,
                straggler_factor=by_id[o.job_id].straggler_factor,
                io_fraction=by_id[o.job_id].io_fraction,
                busy_executor_s=o.busy_executor_s,
                revocation_hits=o.revocation_hits,
            )
            for o in outcomes
        )
        return ScenarioReport(
            spec=spec,
            seed=seed,
            slots=slots,
            jobs=jobs,
            revocations=revocations,
            makespan_s=max(j.finish_s for j in jobs),
            pool_busy_executor_s=pool_busy,
        )


def _telemetry_observer(trace_name: str) -> Observer:
    names = {
        "arrived": SCENARIO_JOB_ARRIVED,
        "started": SCENARIO_JOB_STARTED,
        "finished": SCENARIO_JOB_FINISHED,
        "revocation": SCENARIO_REVOCATION,
    }

    def observe(kind: str, **fields: object) -> None:
        name = names.get(kind)
        if name is not None:  # "alloc" stays out of the event log
            tele.event(name, trace=trace_name, **fields)

    return observe


# ----------------------------------------------------------------------
# Tuning under interference
# ----------------------------------------------------------------------
#: Job id the target request is injected under (cannot collide with the
#: generated ``<program>-NNN`` ids).
TARGET_JOB_ID = "__target__"


class InterferenceBackend(ExecutionBackend):
    """Rewrites measurements into shared-cluster completion times.

    Wraps a base engine: every request first runs in isolation on the
    base backend (cacheable, deterministic), then gets injected as a
    job arriving at ``target_arrival_s`` into the background scenario
    ``(spec, seed)``; the reported ``seconds`` becomes the target's
    queue + run completion time.  The whole DAC pipeline — collector,
    model, GA — runs unchanged on top, and therefore optimizes the
    configuration *for the contended cluster*.
    """

    name = "interference"

    def __init__(
        self,
        base: ExecutionBackend,
        spec: TraceSpec,
        seed: int = 0,
        cluster: ClusterSpec = PAPER_CLUSTER,
        target_arrival_s: float = 0.0,
    ):
        super().__init__()
        if target_arrival_s < 0:
            raise ValueError("target_arrival_s must be >= 0")
        self.base = base
        self.spec = spec
        self.seed = seed
        self.cluster = cluster
        self.target_arrival_s = target_arrival_s
        self.supports_parallel_tasks = base.supports_parallel_tasks
        self._runner = ScenarioRunner(cluster, engine=base)
        self._background: Optional[
            Tuple[List[JobLoad], Tuple[Revocation, ...], int, Tuple[float, ...]]
        ] = None

    @property
    def slots(self) -> int:
        """Size of the contended executor pool."""
        return self._runner.slots_for(self.spec)

    def _bg(self) -> Tuple[List[JobLoad], Tuple[Revocation, ...], int, Tuple[float, ...]]:
        if self._background is None:
            trace = generate_trace(self.spec, self.seed)
            slots = self._runner.slots_for(self.spec)
            self._background = (
                self._runner.job_loads(trace),
                resolve_revocations(trace, slots),
                slots,
                _slot_speeds(self.spec.node_speed_factors, slots),
            )
        return self._background

    def submit(self, requests: Sequence[ExecRequest]) -> List[ExecOutcome]:
        base_outcomes = self.base.submit(requests)
        bg_loads, revocations, slots, speeds = self._bg()
        outcomes: List[ExecOutcome] = []
        for request, outcome in zip(requests, base_outcomes):
            if not outcome.ok:
                outcomes.append(outcome)
                continue
            target = JobLoad(
                job_id=TARGET_JOB_ID,
                arrival_s=self.target_arrival_s,
                demand=demand_for(request.config, self.cluster, slots),
                isolated_s=outcome.run.seconds,
                io_fraction=io_fraction_of(outcome.run),
            )
            sim_outcomes, _ = simulate(
                [*bg_loads, target],
                slots,
                policy=self.spec.policy,
                revocations=revocations,
                interference_coefficient=self.spec.interference_coefficient,
                slot_speeds=speeds,
                rework=self.spec.revocation_rework,
            )
            finish = next(
                o.finish_s for o in sim_outcomes if o.job_id == TARGET_JOB_ID
            )
            contended = dataclasses.replace(
                outcome,
                run=dataclasses.replace(
                    outcome.run, seconds=finish - self.target_arrival_s
                ),
            )
            self._recorder.record(contended)
            outcomes.append(contended)
        return outcomes

    def map_tasks(self, fn, items: Sequence) -> List:
        return self.base.map_tasks(fn, items)

    def signature(self) -> str:
        return (
            f"interference|{self.base.signature()}|{self.spec.spec_key()}"
            f"|seed={self.seed}|arrival={self.target_arrival_s!r}"
        )

    def close(self) -> None:
        self.base.close()


# ----------------------------------------------------------------------
# Built-in traces
# ----------------------------------------------------------------------
def _min_size(program: str) -> float:
    from repro.workloads import get_workload

    return float(min(get_workload(program).paper_sizes))


def _smoke_trace() -> TraceSpec:
    """Small, adversity-free: queueing and contention only."""
    return TraceSpec(
        name="smoke",
        templates=(
            JobTemplate(program="WC", size=_min_size("WC")),
            JobTemplate(program="TS", size=_min_size("TS")),
        ),
        n_jobs=4,
        arrival_rate_per_min=6.0,
        policy=FIFO,
        executor_slots=48,
    )


def _rush_trace() -> TraceSpec:
    """A burst of mixed tenants with random configs and stragglers —
    the default background for tuning under interference."""
    return TraceSpec(
        name="rush",
        templates=(
            JobTemplate(program="WC", size=_min_size("WC"), random_config=True),
            JobTemplate(program="TS", size=_min_size("TS"), random_config=True),
            JobTemplate(
                program="KM", size=_min_size("KM"), random_config=True, weight=0.5
            ),
        ),
        n_jobs=10,
        arrival_rate_per_min=10.0,
        policy=FAIR,
        executor_slots=64,
        straggler_probability=0.15,
    )


def _spot_trace() -> TraceSpec:
    """Spot-market cluster: heterogeneous nodes, revocations."""
    return TraceSpec(
        name="spot",
        templates=(
            JobTemplate(program="TS", size=_min_size("TS")),
            JobTemplate(program="WC", size=_min_size("WC")),
        ),
        n_jobs=6,
        arrival_rate_per_min=4.0,
        policy=FIFO,
        executor_slots=48,
        node_speed_factors=(1.0, 0.9, 0.75),
        revocation_rate_per_min=0.3,
        revocation_fraction=0.25,
        revocation_duration_s=120.0,
        revocation_horizon_s=1800.0,
    )


_BUILTIN_BUILDERS = {
    "smoke": _smoke_trace,
    "rush": _rush_trace,
    "spot": _spot_trace,
}

#: Names accepted by ``builtin_trace`` / ``repro scenario run --trace``.
BUILTIN_TRACES = tuple(sorted(_BUILTIN_BUILDERS))


def builtin_trace(name: str) -> TraceSpec:
    """One of the named built-in scenarios (see :data:`BUILTIN_TRACES`)."""
    try:
        return _BUILTIN_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; built-ins: {', '.join(BUILTIN_TRACES)}"
        ) from None
