"""A discrete cost-model simulator of Spark 1.6 on a small cluster.

This package is the *measurement substrate* of the reproduction: the paper
tuned real Spark 1.6 on a 6-node cluster; we substitute a simulator whose
execution time is a deterministic-but-noisy, high-dimensional, nonlinear
function of **all 41 Table-2 configuration parameters** and the input
dataset size.  DAC (``repro.core``) treats it as a black box, exactly as
the paper treats the real cluster.

Main entry points:

* :class:`~repro.sparksim.cluster.ClusterSpec` — hardware description
  (defaults mirror the paper's 6x DELL testbed);
* :data:`~repro.sparksim.confspace.SPARK_CONF_SPACE` — the 41-parameter
  space of Table 2;
* :class:`~repro.sparksim.simulator.SparkSimulator` — runs a
  :class:`~repro.sparksim.dag.JobSpec` under a configuration and returns a
  :class:`~repro.sparksim.simulator.RunResult` with total and per-stage
  times, GC time, spill volume, and retry counts;
* :class:`~repro.sparksim.arrivals.TraceSpec` /
  :mod:`repro.sparksim.scenario` — shared-cluster scenarios: N jobs with
  Poisson arrivals contending for one executor pool (FIFO/fair
  allocation, heterogeneous nodes, stragglers, spot revocations), all
  replayable bit-identically from a ``(spec, seed)`` pair.
  ``scenario`` is imported lazily (it pulls in the engine); arrival
  types are re-exported here.
"""

from repro.sparksim.arrivals import (
    JobTemplate,
    Revocation,
    Trace,
    TraceSpec,
    generate_trace,
)
from repro.sparksim.cluster import ClusterSpec
from repro.sparksim.config import SparkConf
from repro.sparksim.confspace import SPARK_CONF_SPACE, spark_configuration_space
from repro.sparksim.dag import JobSpec, StageSpec
from repro.sparksim.simulator import RunResult, SparkSimulator, StageResult

__all__ = [
    "ClusterSpec",
    "JobSpec",
    "JobTemplate",
    "Revocation",
    "RunResult",
    "SPARK_CONF_SPACE",
    "SparkConf",
    "SparkSimulator",
    "StageResult",
    "StageSpec",
    "Trace",
    "TraceSpec",
    "generate_trace",
    "spark_configuration_space",
]
