"""Shuffle write/read cost model.

Covers the shuffle-behaviour block of Table 2:
``spark.shuffle.manager`` (sort vs. hash),
``spark.shuffle.sort.bypassMergeThreshold``,
``spark.shuffle.consolidateFiles``, ``spark.shuffle.file.buffer``,
``spark.shuffle.compress``, ``spark.shuffle.spill``,
``spark.shuffle.spill.compress``, and
``spark.reducer.maxSizeInFlight`` on the read side.

The model charges, per map task: sort CPU (unless hash manager or the
bypass path applies), compression CPU, buffered-write syscall overhead
(inverse in the file buffer size), file-open seeks (quadratic file count
for the hash manager without consolidation), and disk bandwidth; and per
reduce task: fetch round-trips (inverse in ``maxSizeInFlight``), network
bytes, decompression and deserialization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.units import KB, MB
from repro.sparksim.cluster import ClusterSpec
from repro.sparksim.config import SparkConf
from repro.sparksim.serializer import CompressionModel, SerializerModel

#: CPU seconds per MB per doubling of sorted run count (merge-sort work).
_SORT_SECONDS_PER_MB_PER_LEVEL = 0.0009
#: Fixed syscall cost per buffer flush.
_FLUSH_SECONDS = 3.0e-6
#: Latency of one shuffle fetch round trip.
_FETCH_ROUND_TRIP_SECONDS = 0.004


@dataclass(frozen=True)
class ShuffleWriteCost:
    cpu_seconds: float
    disk_seconds: float
    spill_extra_seconds: float
    bytes_on_disk: float


@dataclass(frozen=True)
class ShuffleReadCost:
    cpu_seconds: float
    network_seconds: float
    disk_seconds: float
    rounds: int


class ShuffleModel:
    """Shuffle costs for one (configuration, cluster) pair."""

    def __init__(self, conf: SparkConf, cluster: ClusterSpec):
        self.conf = conf
        self.cluster = cluster
        self.serializer = SerializerModel(conf)
        self.codec = CompressionModel(conf)

    # ------------------------------------------------------------------
    def wire_bytes(self, raw_bytes: float) -> float:
        """Bytes that hit disk/network for ``raw_bytes`` of shuffle data."""
        serialized = raw_bytes * self.serializer.wire_ratio()
        if self.conf.shuffle_compress:
            return serialized * self.codec.ratio()
        return serialized

    def _disk_seconds(self, bytes_on_disk: float, concurrent_per_node: int) -> float:
        """Disk time with bandwidth shared by tasks actually running."""
        return bytes_on_disk / self.cluster.disk_share(concurrent_per_node)

    def _uses_bypass_merge(self, num_reduce_partitions: int, map_side_combine: bool) -> bool:
        return (
            self.conf.shuffle_manager == "sort"
            and not map_side_combine
            and num_reduce_partitions <= self.conf.bypass_merge_threshold
        )

    def files_opened_per_map_task(
        self, num_reduce_partitions: int, map_side_combine: bool
    ) -> int:
        """Shuffle files one map task creates (seek cost each)."""
        if self.conf.shuffle_manager == "sort" and not self._uses_bypass_merge(
            num_reduce_partitions, map_side_combine
        ):
            return 1  # single sorted, indexed file
        # Hash path (or bypass path): one file per reduce partition,
        # unless consolidation reuses files across tasks on a core.
        if self.conf.consolidate_files:
            return max(1, int(math.ceil(num_reduce_partitions / 8)))
        return num_reduce_partitions

    # ------------------------------------------------------------------
    def write_cost(
        self,
        raw_bytes_per_task: float,
        num_reduce_partitions: int,
        spill_bytes: float,
        map_side_combine: bool,
        concurrent_per_node: int,
    ) -> ShuffleWriteCost:
        """Cost of producing one map task's shuffle output.

        ``spill_bytes`` is the execution-memory overflow resolved by
        :class:`~repro.sparksim.memory.MemoryModel`; it pays an extra
        round trip to disk (optionally compressed).
        """
        serialized = raw_bytes_per_task * self.serializer.wire_ratio()
        on_disk = self.wire_bytes(raw_bytes_per_task)

        cpu = raw_bytes_per_task * self.serializer.serialize_seconds_per_byte()
        if self.conf.shuffle_compress:
            cpu += serialized * self.codec.compress_seconds_per_byte()

        if self.conf.shuffle_manager == "sort" and not self._uses_bypass_merge(
            num_reduce_partitions, map_side_combine
        ):
            # Merge-sort work grows with the number of merge levels, which
            # grows with how far the data overflows the in-memory buffer.
            runs = 1 + spill_bytes / max(self.conf.spark_memory_per_executor, 1.0)
            levels = 1.0 + math.log2(max(runs, 1.0) + 1.0)
            cpu += (raw_bytes_per_task / MB) * _SORT_SECONDS_PER_MB_PER_LEVEL * levels

        flushes = on_disk / max(self.conf.shuffle_file_buffer, 1)
        cpu += flushes * _FLUSH_SECONDS

        files = self.files_opened_per_map_task(num_reduce_partitions, map_side_combine)
        disk = (
            self._disk_seconds(on_disk, concurrent_per_node)
            + files * self.cluster.disk_seek_seconds
        )

        spill_extra = 0.0
        if spill_bytes > 0:
            spill_wire = spill_bytes * self.serializer.wire_ratio()
            if self.conf.shuffle_spill_compress:
                spill_cpu = spill_wire * (
                    self.codec.compress_seconds_per_byte()
                    + self.codec.decompress_seconds_per_byte()
                )
                spill_disk_bytes = spill_wire * self.codec.ratio()
            else:
                spill_cpu = 0.0
                spill_disk_bytes = spill_wire
            spill_cpu += spill_bytes * (
                self.serializer.serialize_seconds_per_byte()
                + self.serializer.deserialize_seconds_per_byte()
            )
            # Written once, read back once during the merge.
            spill_extra = spill_cpu + self._disk_seconds(
                2.0 * spill_disk_bytes, concurrent_per_node
            )

        return ShuffleWriteCost(
            cpu_seconds=cpu,
            disk_seconds=disk,
            spill_extra_seconds=spill_extra,
            bytes_on_disk=on_disk,
        )

    # ------------------------------------------------------------------
    def read_cost(
        self,
        raw_bytes_per_task: float,
        local_fraction: float,
        concurrent_per_node: int,
    ) -> ShuffleReadCost:
        """Cost of one reduce task fetching and ingesting its input.

        ``local_fraction`` of the bytes sit on the same node (disk read
        only); the rest crosses the network in windows of
        ``spark.reducer.maxSizeInFlight``.
        """
        wire = self.wire_bytes(raw_bytes_per_task)
        remote_wire = wire * (1.0 - local_fraction)
        local_wire = wire * local_fraction

        rounds = int(math.ceil(remote_wire / max(self.conf.reducer_max_size_in_flight, 1)))
        net_share = self.cluster.network_share(concurrent_per_node)
        network = remote_wire / net_share + rounds * _FETCH_ROUND_TRIP_SECONDS

        serialized = raw_bytes_per_task * self.serializer.wire_ratio()
        cpu = raw_bytes_per_task * self.serializer.deserialize_seconds_per_byte()
        if self.conf.shuffle_compress:
            cpu += serialized * self.codec.decompress_seconds_per_byte()

        # Local blocks above the mmap threshold avoid a copy.
        mmap_discount = 0.8 if local_wire > self.conf.memory_map_threshold else 1.0
        disk = self._disk_seconds(local_wire, concurrent_per_node) * mmap_discount

        return ShuffleReadCost(
            cpu_seconds=cpu, network_seconds=network, disk_seconds=disk, rounds=rounds
        )
