"""The 41 Spark configuration parameters of Table 2.

Each entry reproduces the paper's Table 2 exactly: name, one-line
description, tuning range, and Spark-1.6 default.  Two quirks of the
table are preserved:

* ``spark.memory.offHeap.size`` has range 10-1000 MB but default 0 (the
  feature is off by default);
* ``spark.storage.memoryMapThreshold`` has range 50-500 MB but default
  2 MB;
* ``spark.scheduler.revive.interval`` has range 2-50 s but default 1 s.

:class:`~repro.common.space.Configuration` accepts a default that sits
outside the tuning range, so these are representable as-is.
"""

from __future__ import annotations

from repro.common.space import (
    BoolParameter,
    CategoricalParameter,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
)

_PARAMETERS = [
    IntParameter(
        "spark.reducer.maxSizeInFlight", 2, 128, 48,
        "Maximum size of map outputs to fetch simultaneously from each reduce task, in MB.",
    ),
    IntParameter(
        "spark.shuffle.file.buffer", 2, 128, 32,
        "Size of the in-memory buffer for each shuffle file output stream, in KB.",
    ),
    IntParameter(
        "spark.shuffle.sort.bypassMergeThreshold", 100, 1000, 200,
        "Avoid merge-sorting data if there is no map-side aggregation.",
    ),
    IntParameter(
        "spark.speculation.interval", 10, 1000, 100,
        "How often Spark will check for tasks to speculate, in milliseconds.",
    ),
    FloatParameter(
        "spark.speculation.multiplier", 1.0, 5.0, 1.5,
        "How many times slower a task is than the median to be considered for speculation.",
    ),
    FloatParameter(
        "spark.speculation.quantile", 0.0, 1.0, 0.75,
        "Percentage of tasks which must be complete before speculation is enabled.",
    ),
    IntParameter(
        "spark.broadcast.blockSize", 2, 128, 4,
        "Size of each piece of a block for TorrentBroadcastFactory, in MB.",
    ),
    CategoricalParameter(
        "spark.io.compression.codec", ("snappy", "lzf", "lz4"), "snappy",
        "The codec used to compress internal data such as RDD partitions.",
    ),
    IntParameter(
        "spark.io.compression.lz4.blockSize", 2, 128, 32,
        "Block size used in LZ4 compression, in KB.",
    ),
    IntParameter(
        "spark.io.compression.snappy.blockSize", 2, 128, 32,
        "Block size used in snappy compression, in KB.",
    ),
    BoolParameter(
        "spark.kryo.referenceTracking", True,
        "Whether to track references to the same object when serializing with Kryo.",
    ),
    IntParameter(
        "spark.kryoserializer.buffer.max", 8, 128, 64,
        "Maximum allowable size of Kryo serialization buffer, in MB.",
    ),
    IntParameter(
        "spark.kryoserializer.buffer", 2, 128, 64,
        "Initial size of Kryo's serialization buffer, in KB.",
    ),
    IntParameter(
        "spark.driver.cores", 1, 12, 1,
        "Number of cores to use for the driver process.",
    ),
    IntParameter(
        "spark.executor.cores", 1, 12, 12,
        "The number of cores to use on each executor.",
    ),
    IntParameter(
        "spark.driver.memory", 1024, 12288, 1024,
        "Amount of memory to use for the driver process, in MB.",
    ),
    IntParameter(
        "spark.executor.memory", 1024, 12288, 1024,
        "Amount of memory to use per executor process, in MB.",
    ),
    IntParameter(
        "spark.storage.memoryMapThreshold", 50, 500, 2,
        "Size of a block above which Spark memory-maps when reading from disk, in MB.",
    ),
    IntParameter(
        "spark.akka.failure.detector.threshold", 100, 500, 300,
        "Set to a larger value to disable the failure detector in Akka.",
    ),
    IntParameter(
        "spark.akka.heartbeat.pauses", 1000, 10000, 6000,
        "Acceptable heart-beat pause for Akka, in seconds.",
    ),
    IntParameter(
        "spark.akka.heartbeat.interval", 200, 5000, 1000,
        "Heart-beat interval for Akka, in seconds.",
    ),
    IntParameter(
        "spark.akka.threads", 1, 8, 4,
        "Number of actor threads to use for communication.",
    ),
    IntParameter(
        "spark.network.timeout", 20, 500, 120,
        "Default timeout for all network interactions, in seconds.",
    ),
    IntParameter(
        "spark.locality.wait", 1, 10, 3,
        "How long to wait to launch a data-local task before giving up, in seconds.",
    ),
    IntParameter(
        "spark.scheduler.revive.interval", 2, 50, 1,
        "The interval for the scheduler to revive worker resource offers, in seconds.",
    ),
    IntParameter(
        "spark.task.maxFailures", 1, 8, 4,
        "Number of task failures before giving up on the job.",
    ),
    BoolParameter(
        "spark.shuffle.compress", True,
        "Whether to compress map output files.",
    ),
    BoolParameter(
        "spark.shuffle.consolidateFiles", False,
        "If true, consolidates intermediate files created during a shuffle.",
    ),
    FloatParameter(
        "spark.memory.fraction", 0.5, 1.0, 0.75,
        "Fraction of (heap space - 300 MB) used for execution and storage.",
    ),
    BoolParameter(
        "spark.shuffle.spill", True,
        "Responsible for enabling/disabling spilling.",
    ),
    BoolParameter(
        "spark.shuffle.spill.compress", True,
        "Whether to compress data spilled during shuffles.",
    ),
    BoolParameter(
        "spark.speculation", False,
        "If true, performs speculative execution of tasks.",
    ),
    BoolParameter(
        "spark.broadcast.compress", True,
        "Whether to compress broadcast variables before sending them.",
    ),
    BoolParameter(
        "spark.rdd.compress", False,
        "Whether to compress serialized RDD partitions.",
    ),
    CategoricalParameter(
        "spark.serializer", ("java", "kryo"), "java",
        "Class used for serializing objects sent over the network or cached in serialized form.",
    ),
    FloatParameter(
        "spark.memory.storageFraction", 0.5, 1.0, 0.5,
        "Amount of storage memory immune to eviction, as a fraction of spark.memory.fraction.",
    ),
    BoolParameter(
        "spark.localExecution.enabled", False,
        "Enables Spark to run certain jobs on the driver, without sending tasks to the cluster.",
    ),
    IntParameter(
        "spark.default.parallelism", 8, 50, 24,
        "The largest number of partitions in a parent RDD for distributed shuffle operations.",
    ),
    BoolParameter(
        "spark.memory.offHeap.enabled", False,
        "If true, Spark will attempt to use off-heap memory for certain operations.",
    ),
    CategoricalParameter(
        "spark.shuffle.manager", ("sort", "hash"), "sort",
        "Implementation to use for shuffling data.",
    ),
    IntParameter(
        "spark.memory.offHeap.size", 10, 1000, 0,
        "The absolute amount of memory usable for off-heap allocation, in MB.",
    ),
]


def spark_configuration_space() -> ConfigurationSpace:
    """Build a fresh copy of the Table 2 configuration space."""
    return ConfigurationSpace(_PARAMETERS, name="spark-1.6-table2")


#: Module-level singleton; the space is immutable, so sharing is safe.
SPARK_CONF_SPACE = spark_configuration_space()

assert len(SPARK_CONF_SPACE) == 41, "Table 2 lists exactly 41 parameters"
