"""Hardware description of the simulated cluster.

Defaults mirror the paper's testbed (Section 4): six DELL servers — one
master, five slaves — each with 12 six-core Intel Xeon E5-2609 processors
(72 cores/node, 432 total) and 64 GB of memory (384 GB total).  Disk and
network figures are typical for that class of 2017-era hardware and only
set the absolute time scale; the *relative* results DAC cares about are
driven by the configuration-dependent terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import GB, MB


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the cluster the simulator runs on.

    Attributes
    ----------
    worker_nodes:
        Number of slave nodes that host executors (the master only runs
        the driver).
    cores_per_node:
        Physical cores available to executors on each worker.
    memory_per_node_bytes:
        Physical RAM per worker.  A fixed OS/daemon reservation
        (``os_reserved_bytes``) is subtracted before packing executors.
    disk_bandwidth_bytes_per_s:
        Sequential per-node disk throughput shared by all executors on
        the node (shuffle writes, spills, input reads).
    network_bandwidth_bytes_per_s:
        Per-node NIC throughput (shuffle fetches, broadcasts).
    core_speed:
        Relative CPU speed multiplier; 1.0 calibrates the workload CPU
        cost constants.
    disk_seek_seconds:
        Fixed cost of one random I/O, charged per shuffle-file open.
    """

    worker_nodes: int = 5
    cores_per_node: int = 72
    memory_per_node_bytes: int = 64 * GB
    os_reserved_bytes: int = 8 * GB
    disk_bandwidth_bytes_per_s: float = 180 * MB
    network_bandwidth_bytes_per_s: float = 117 * MB  # ~1 GbE payload rate
    core_speed: float = 1.0
    disk_seek_seconds: float = 0.008
    hdfs_block_bytes: int = 128 * MB

    def __post_init__(self) -> None:
        if self.worker_nodes < 1:
            raise ValueError("cluster needs at least one worker node")
        if self.cores_per_node < 1:
            raise ValueError("workers need at least one core")
        if self.memory_per_node_bytes <= self.os_reserved_bytes:
            raise ValueError("node memory must exceed the OS reservation")

    #: Per-stream slowdown coefficient once more than this many tasks
    #: stream from one node's disks at once (seek thrash).
    disk_contention_free_streams: int = 16
    disk_contention_coefficient: float = 0.05
    network_contention_coefficient: float = 0.02

    def disk_share(self, concurrent_per_node: int) -> float:
        """Effective disk bandwidth per task with ``concurrent_per_node``
        streams on one node.  Beyond ~16 streams, seek thrash makes the
        aggregate bandwidth itself degrade — this is what punishes the
        default 12-cores-per-executor packing on I/O-heavy stages."""
        concurrent = max(concurrent_per_node, 1)
        excess = max(0, concurrent - self.disk_contention_free_streams)
        thrash = 1.0 + self.disk_contention_coefficient * excess
        return self.disk_bandwidth_bytes_per_s / (concurrent * thrash)

    def network_share(self, concurrent_per_node: int) -> float:
        """Effective NIC bandwidth per task (mild contention only)."""
        concurrent = max(concurrent_per_node, 1)
        excess = max(0, concurrent - self.disk_contention_free_streams)
        congestion = 1.0 + self.network_contention_coefficient * excess
        return self.network_bandwidth_bytes_per_s / (concurrent * congestion)

    @property
    def total_cores(self) -> int:
        """Cores available for executors across all workers."""
        return self.worker_nodes * self.cores_per_node

    @property
    def usable_memory_per_node_bytes(self) -> int:
        """Memory per worker after the OS reservation."""
        return self.memory_per_node_bytes - self.os_reserved_bytes

    @property
    def total_usable_memory_bytes(self) -> int:
        return self.worker_nodes * self.usable_memory_per_node_bytes

    @property
    def aggregate_disk_bandwidth(self) -> float:
        return self.worker_nodes * self.disk_bandwidth_bytes_per_s

    @property
    def aggregate_network_bandwidth(self) -> float:
        return self.worker_nodes * self.network_bandwidth_bytes_per_s


#: The paper's testbed (Section 4), used by all experiments by default.
PAPER_CLUSTER = ClusterSpec()
