"""Control-plane and broadcast network model.

Covers the networking block of Table 2: torrent broadcast
(``spark.broadcast.blockSize``, ``spark.broadcast.compress``), the Akka
actor system (``spark.akka.threads``, ``spark.akka.heartbeat.interval``,
``spark.akka.heartbeat.pauses``, ``spark.akka.failure.detector.threshold``)
and ``spark.network.timeout``.

Two failure interactions matter for tuning:

* a long stop-the-world GC pause combined with an aggressive heartbeat
  budget (small ``akka.heartbeat.pauses`` / small failure-detector
  threshold) makes the master declare a healthy executor lost, rerunning
  its tasks;
* a small ``spark.network.timeout`` under heavy shuffle load causes fetch
  failures and task retries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sparksim.cluster import ClusterSpec
from repro.sparksim.config import SparkConf
from repro.sparksim.serializer import CompressionModel


@dataclass(frozen=True)
class NetworkModel:
    conf: SparkConf
    cluster: ClusterSpec

    # -- broadcast -------------------------------------------------------
    def broadcast_seconds(self, raw_bytes: float) -> float:
        """Time to torrent-broadcast a variable to all executors.

        Torrent broadcast pipelines blocks peer-to-peer, so cost grows
        ~logarithmically in executor count.  Tiny blocks pay per-block
        control overhead; huge blocks lose pipelining.
        """
        if raw_bytes <= 0:
            return 0.0
        codec = CompressionModel(self.conf)
        wire = raw_bytes * (codec.ratio() if self.conf.broadcast_compress else 1.0)
        cpu = (
            raw_bytes * codec.compress_seconds_per_byte()
            if self.conf.broadcast_compress
            else 0.0
        )
        blocks = max(1.0, wire / max(self.conf.broadcast_block_size, 1))
        fanout = math.log2(self.conf.num_executors + 1) + 1.0
        transfer = wire * fanout / self.cluster.network_bandwidth_bytes_per_s
        per_block_overhead = 0.002 * blocks
        # Losing pipelining when a block is a large share of the payload.
        pipelining_penalty = 1.0 + 0.5 / blocks
        return float(cpu + transfer * pipelining_penalty + per_block_overhead)

    # -- control plane ----------------------------------------------------
    def dispatch_seconds_per_task(self) -> float:
        """Driver-side cost to launch one task.

        Serializing and shipping a task closure takes ~1 ms and is
        processed by ``spark.akka.threads`` actor threads in parallel
        (up to the driver's core budget).
        """
        threads = min(self.conf.akka_threads, self.conf.driver_cores * 2)
        return 0.0012 / max(threads, 1)

    def heartbeat_overhead_fraction(self) -> float:
        """Fraction of executor CPU spent servicing heartbeats."""
        interval = max(self.conf.akka_heartbeat_interval, 1.0)
        return min(0.5 / interval, 0.02)

    def executor_lost_probability(self, max_gc_pause_seconds: float) -> float:
        """P(master declares an executor dead during a GC pause).

        ``spark.akka.heartbeat.pauses`` is the acceptable pause budget in
        seconds (Table 2 range 1000-10000 s — deliberately enormous:
        "set to a larger value to disable failure detector").  Only a
        pathological combination of a minimal budget and a minimal
        failure-detector threshold brings the tolerance near real GC
        pause lengths.
        """
        tolerance = self.conf.akka_heartbeat_pauses * (
            self.conf.akka_failure_threshold / 300.0
        )
        if max_gc_pause_seconds <= tolerance:
            return 0.0
        overshoot = max_gc_pause_seconds / max(tolerance, 1e-3) - 1.0
        return float(min(0.9, 0.25 * overshoot))

    def fetch_failure_probability(
        self, stage_network_seconds: float, max_gc_pause_seconds: float = 0.0
    ) -> float:
        """P(a shuffle fetch exceeds ``spark.network.timeout``).

        A fetch stalls for the remote executor's worst GC pause on top of
        the transfer itself, so heavy GC plus a small timeout is the
        realistic path from memory pressure to fetch failures.
        """
        stall = stage_network_seconds + max_gc_pause_seconds
        if stall <= 0:
            return 0.0
        headroom = self.conf.network_timeout / max(stall, 1e-6)
        if headroom >= 3.0:
            return 0.0
        return float(min(0.8, 0.3 * (3.0 - headroom) / 3.0))
