"""Human-readable run reports — a text-mode Spark UI.

Renders a :class:`~repro.sparksim.simulator.RunResult` the way engineers
read the Spark web UI: per-stage wall time with share-of-total bars,
GC/compute/IO/shuffle decomposition, retry and spill diagnostics, and a
one-line health verdict pointing at the dominant bottleneck — the same
reading of the data that Section 5.8 performs manually for KMeans and
TeraSort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.units import fmt_bytes, fmt_duration
from repro.sparksim.simulator import RunResult, StageResult

_BAR_WIDTH = 24


def _bar(fraction: float) -> str:
    filled = int(round(max(0.0, min(fraction, 1.0)) * _BAR_WIDTH))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


@dataclass(frozen=True)
class Diagnosis:
    """The report's verdict on where the time went."""

    bottleneck: str  # "gc" | "spill" | "retries" | "shuffle" | "compute" | "io"
    detail: str


def diagnose(result: RunResult) -> Diagnosis:
    """Name the dominant pathology of a run (or 'compute'/'io' if healthy)."""
    total = max(result.seconds, 1e-9)
    core_seconds = sum(
        s.compute_core_seconds + s.io_core_seconds + s.shuffle_core_seconds
        for s in result.stages
    )
    gc = result.gc_seconds

    worst_retry = max(
        (s.expected_attempts_per_task * s.job_rerun_factor for s in result.stages),
        default=1.0,
    )
    if worst_retry > 2.0:
        return Diagnosis(
            "retries",
            f"task attempts x job reruns reach {worst_retry:.1f}x — raise "
            "spark.executor.memory or lower parallelism pressure",
        )
    if gc > 0.5 * core_seconds:
        return Diagnosis(
            "gc",
            f"GC consumes {fmt_duration(gc)} against "
            f"{fmt_duration(core_seconds)} of useful work — grow heaps or "
            "reduce concurrent tasks per executor",
        )
    if result.spill_bytes > result.datasize_bytes:
        return Diagnosis(
            "spill",
            f"{fmt_bytes(result.spill_bytes)} spilled (more than the input) — "
            "increase execution memory or partitions",
        )
    shuffle = sum(s.shuffle_core_seconds for s in result.stages)
    compute = sum(s.compute_core_seconds for s in result.stages)
    io = sum(s.io_core_seconds for s in result.stages)
    dominant = max((compute, "compute"), (io, "io"), (shuffle, "shuffle"))
    return Diagnosis(dominant[1], f"{dominant[1]}-bound; no pathology detected")


def render_run_report(result: RunResult, title: str = "") -> str:
    """Multi-line report for one simulated execution."""
    lines: List[str] = []
    header = title or f"{result.program} ({fmt_bytes(result.datasize_bytes)})"
    lines.append(f"=== {header} — total {fmt_duration(result.seconds)} ===")

    total = max(result.seconds, 1e-9)
    name_width = max((len(s.name) for s in result.stages), default=4)
    for stage in result.stages:
        share = stage.seconds / total
        lines.append(
            f"{stage.name:<{name_width}} [{_bar(share)}] "
            f"{fmt_duration(stage.seconds):>10} ({share * 100:4.1f}%) "
            f"x{stage.iterations:<3d} tasks={stage.num_tasks}"
        )
        extras = _stage_extras(stage)
        if extras:
            lines.append(" " * name_width + "   " + extras)

    lines.append(
        f"totals: GC {fmt_duration(result.gc_seconds)}, "
        f"spill {fmt_bytes(result.spill_bytes)}"
    )
    verdict = diagnose(result)
    lines.append(f"verdict: {verdict.bottleneck} — {verdict.detail}")
    return "\n".join(lines)


def _stage_extras(stage: StageResult) -> str:
    """Second line of per-stage detail, only when something is notable."""
    notes: List[str] = []
    if stage.gc_seconds > 1.0:
        notes.append(f"gc={fmt_duration(stage.gc_seconds)}")
    if stage.spill_bytes > 0:
        notes.append(f"spill={fmt_bytes(stage.spill_bytes)}")
    if stage.expected_attempts_per_task > 1.05:
        notes.append(f"attempts={stage.expected_attempts_per_task:.2f}")
    if stage.job_rerun_factor > 1.05:
        notes.append(f"job-reruns={stage.job_rerun_factor:.2f}")
    return "  ".join(notes)


def compare_runs(
    baseline: RunResult, tuned: RunResult, labels: Tuple[str, str] = ("baseline", "tuned")
) -> str:
    """Side-by-side stage comparison (the Figure 13/14 reading)."""
    lines = [
        f"=== {baseline.program}: {labels[0]} "
        f"{fmt_duration(baseline.seconds)} vs {labels[1]} "
        f"{fmt_duration(tuned.seconds)} "
        f"({baseline.seconds / max(tuned.seconds, 1e-9):.1f}x) ==="
    ]
    name_width = max(len(s.name) for s in baseline.stages)
    tuned_stages = {s.name: s for s in tuned.stages}
    for stage in baseline.stages:
        other = tuned_stages.get(stage.name)
        if other is None:
            continue
        ratio = stage.seconds / max(other.seconds, 1e-9)
        lines.append(
            f"{stage.name:<{name_width}} {fmt_duration(stage.seconds):>10} -> "
            f"{fmt_duration(other.seconds):>10}  ({ratio:5.1f}x)"
        )
    gc_ratio = baseline.gc_seconds / max(tuned.gc_seconds, 1e-9)
    lines.append(
        f"{'GC':<{name_width}} {fmt_duration(baseline.gc_seconds):>10} -> "
        f"{fmt_duration(tuned.gc_seconds):>10}  ({gc_ratio:5.1f}x)"
    )
    return "\n".join(lines)
