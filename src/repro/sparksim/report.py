"""Human-readable run reports — a text-mode Spark UI.

Renders a :class:`~repro.sparksim.simulator.RunResult` the way engineers
read the Spark web UI: per-stage wall time with share-of-total bars,
GC/compute/IO/shuffle decomposition, retry and spill diagnostics, and a
one-line health verdict pointing at the dominant bottleneck — the same
reading of the data that Section 5.8 performs manually for KMeans and
TeraSort.

The stage decomposition is built from the canonical telemetry field
dictionaries of :mod:`repro.sparksim.events` — the same records the
simulator emits as ``stage.completed`` events — so the event log and
this report are two renderings of one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.units import fmt_bytes, fmt_duration
from repro.sparksim.events import stage_event_fields
from repro.sparksim.simulator import RunResult

_BAR_WIDTH = 24

#: A stage observation as rendered here: the canonical telemetry fields.
StageRecord = Dict[str, object]


def _bar(fraction: float) -> str:
    filled = int(round(max(0.0, min(fraction, 1.0)) * _BAR_WIDTH))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


@dataclass(frozen=True)
class Diagnosis:
    """The report's verdict on where the time went."""

    bottleneck: str  # "gc" | "spill" | "retries" | "shuffle" | "compute" | "io"
    detail: str


def _diagnose_records(
    records: Sequence[StageRecord],
    total_seconds: float,
    datasize_bytes: float,
) -> Diagnosis:
    core_seconds = sum(
        float(r["compute_core_seconds"])
        + float(r["io_core_seconds"])
        + float(r["shuffle_core_seconds"])
        for r in records
    )
    gc = sum(float(r["gc_seconds"]) for r in records)
    spill = sum(float(r["spill_bytes"]) for r in records)

    worst_retry = max(
        (
            float(r["expected_attempts_per_task"]) * float(r["job_rerun_factor"])
            for r in records
        ),
        default=1.0,
    )
    if worst_retry > 2.0:
        return Diagnosis(
            "retries",
            f"task attempts x job reruns reach {worst_retry:.1f}x — raise "
            "spark.executor.memory or lower parallelism pressure",
        )
    if gc > 0.5 * core_seconds:
        return Diagnosis(
            "gc",
            f"GC consumes {fmt_duration(gc)} against "
            f"{fmt_duration(core_seconds)} of useful work — grow heaps or "
            "reduce concurrent tasks per executor",
        )
    if spill > datasize_bytes:
        return Diagnosis(
            "spill",
            f"{fmt_bytes(spill)} spilled (more than the input) — "
            "increase execution memory or partitions",
        )
    shuffle = sum(float(r["shuffle_core_seconds"]) for r in records)
    compute = sum(float(r["compute_core_seconds"]) for r in records)
    io = sum(float(r["io_core_seconds"]) for r in records)
    dominant = max((compute, "compute"), (io, "io"), (shuffle, "shuffle"))
    return Diagnosis(dominant[1], f"{dominant[1]}-bound; no pathology detected")


def diagnose(result: RunResult) -> Diagnosis:
    """Name the dominant pathology of a run (or 'compute'/'io' if healthy)."""
    records = [stage_event_fields(s) for s in result.stages]
    return _diagnose_records(
        records, max(result.seconds, 1e-9), result.datasize_bytes
    )


def render_run_report(result: RunResult, title: str = "") -> str:
    """Multi-line report for one simulated execution."""
    records = [stage_event_fields(s) for s in result.stages]
    lines: List[str] = []
    header = title or f"{result.program} ({fmt_bytes(result.datasize_bytes)})"
    lines.append(f"=== {header} — total {fmt_duration(result.seconds)} ===")

    total = max(result.seconds, 1e-9)
    name_width = max((len(str(r["stage"])) for r in records), default=4)
    for record in records:
        seconds = float(record["seconds"])
        share = seconds / total
        lines.append(
            f"{str(record['stage']):<{name_width}} [{_bar(share)}] "
            f"{fmt_duration(seconds):>10} ({share * 100:4.1f}%) "
            f"x{int(record['iterations']):<3d} tasks={int(record['num_tasks'])}"
        )
        extras = _stage_extras(record)
        if extras:
            lines.append(" " * name_width + "   " + extras)

    gc = sum(float(r["gc_seconds"]) for r in records)
    spill = sum(float(r["spill_bytes"]) for r in records)
    lines.append(
        f"totals: GC {fmt_duration(gc)}, "
        f"spill {fmt_bytes(spill)}"
    )
    verdict = _diagnose_records(records, total, result.datasize_bytes)
    lines.append(f"verdict: {verdict.bottleneck} — {verdict.detail}")
    return "\n".join(lines)


def _stage_extras(record: StageRecord) -> str:
    """Second line of per-stage detail, only when something is notable."""
    notes: List[str] = []
    if float(record["gc_seconds"]) > 1.0:
        notes.append(f"gc={fmt_duration(float(record['gc_seconds']))}")
    if float(record["spill_bytes"]) > 0:
        notes.append(f"spill={fmt_bytes(float(record['spill_bytes']))}")
    if float(record["expected_attempts_per_task"]) > 1.05:
        notes.append(f"attempts={float(record['expected_attempts_per_task']):.2f}")
    if float(record["job_rerun_factor"]) > 1.05:
        notes.append(f"job-reruns={float(record['job_rerun_factor']):.2f}")
    return "  ".join(notes)


def compare_runs(
    baseline: RunResult, tuned: RunResult, labels: Tuple[str, str] = ("baseline", "tuned")
) -> str:
    """Side-by-side stage comparison (the Figure 13/14 reading)."""
    lines = [
        f"=== {baseline.program}: {labels[0]} "
        f"{fmt_duration(baseline.seconds)} vs {labels[1]} "
        f"{fmt_duration(tuned.seconds)} "
        f"({baseline.seconds / max(tuned.seconds, 1e-9):.1f}x) ==="
    ]
    name_width = max(len(s.name) for s in baseline.stages)
    tuned_stages = {s.name: s for s in tuned.stages}
    for stage in baseline.stages:
        other = tuned_stages.get(stage.name)
        if other is None:
            continue
        ratio = stage.seconds / max(other.seconds, 1e-9)
        lines.append(
            f"{stage.name:<{name_width}} {fmt_duration(stage.seconds):>10} -> "
            f"{fmt_duration(other.seconds):>10}  ({ratio:5.1f}x)"
        )
    gc_ratio = baseline.gc_seconds / max(tuned.gc_seconds, 1e-9)
    lines.append(
        f"{'GC':<{name_width}} {fmt_duration(baseline.gc_seconds):>10} -> "
        f"{fmt_duration(tuned.gc_seconds):>10}  ({gc_ratio:5.1f}x)"
    )
    return "\n".join(lines)
