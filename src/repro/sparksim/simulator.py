"""The Spark job simulator: DAG execution under one configuration.

:class:`SparkSimulator.run` walks a :class:`~repro.sparksim.dag.JobSpec`
in topological order, resolves RDD caching against storage memory,
profiles each stage's tasks (:mod:`repro.sparksim.task`), schedules them
into waves with stragglers/speculation/retries
(:mod:`repro.sparksim.scheduler`), and adds driver-side costs
(broadcast, collect, dispatch).  The result carries per-stage wall time,
GC time, spill volume and retry counts — everything Figures 13/14 of the
paper report.

Determinism: all stochastic draws come from a generator seeded by
(program, datasize, configuration), so a program-input-config triple
always reproduces the same "measurement", while any change to the triple
decorrelates the noise — mimicking re-running a real cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.rng import derive_rng
from repro.common.units import MB
from repro.sparksim.cluster import PAPER_CLUSTER, ClusterSpec
from repro.sparksim.config import SparkConf
from repro.sparksim.events import (
    RUN_SPAN,
    STAGE_COMPLETED,
    STAGE_OOM_RETRY,
    stage_event_fields,
)
from repro.sparksim.dag import JobSpec, StageSpec
from repro.sparksim.memory import MemoryModel
from repro.sparksim.network import NetworkModel
from repro.sparksim.scheduler import WaveScheduler
from repro.sparksim.serializer import SerializerModel
from repro.sparksim.task import StageCostModel
from repro.telemetry import events as tele

#: Jobs smaller than this can run entirely on the driver when
#: ``spark.localExecution.enabled`` is true.
_LOCAL_EXECUTION_LIMIT = 200 * MB
#: Multiplicative log-normal measurement noise (cluster jitter).
_MEASUREMENT_NOISE_SIGMA = 0.03


@dataclass(frozen=True)
class StageResult:
    """Observed behaviour of one stage (all iterations combined)."""

    name: str
    seconds: float
    gc_seconds: float
    spill_bytes: float
    num_tasks: int
    iterations: int
    expected_attempts_per_task: float
    job_rerun_factor: float
    compute_core_seconds: float
    io_core_seconds: float
    shuffle_core_seconds: float


@dataclass(frozen=True)
class RunResult:
    """One simulated execution of a program-input pair."""

    program: str
    datasize_bytes: float
    seconds: float
    stages: Tuple[StageResult, ...]

    @property
    def gc_seconds(self) -> float:
        return sum(s.gc_seconds for s in self.stages)

    @property
    def spill_bytes(self) -> float:
        return sum(s.spill_bytes for s in self.stages)

    def stage(self, name: str) -> StageResult:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)


class SparkSimulator:
    """Runs :class:`JobSpec` instances under Table-2 configurations."""

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        noise_sigma: float = _MEASUREMENT_NOISE_SIGMA,
    ):
        self.cluster = cluster
        self.noise_sigma = noise_sigma

    # ------------------------------------------------------------------
    def run(self, job: JobSpec, config) -> RunResult:
        """Execute ``job`` under ``config`` and return the measurement.

        ``config`` may be a :class:`~repro.common.space.Configuration`,
        a plain dict of overrides, or an existing :class:`SparkConf`.
        """
        conf = config if isinstance(config, SparkConf) else SparkConf(config, self.cluster)
        rng = derive_rng(
            "sparksim",
            job.program,
            job.datasize_bytes,
            conf.config.space.encode(conf.config).tobytes(),
        )
        if not tele.enabled():
            return self._execute(job, conf, rng)
        with tele.span(
            RUN_SPAN, program=job.program, datasize_bytes=job.datasize_bytes
        ) as span:
            result = self._execute(job, conf, rng)
            span.note(seconds=round(result.seconds, 6), stages=len(result.stages))
            return result

    def _execute(
        self, job: JobSpec, conf: SparkConf, rng: np.random.Generator
    ) -> RunResult:
        if conf.local_execution and job.total_input_bytes < _LOCAL_EXECUTION_LIMIT:
            return self._run_locally(job, conf, rng)

        cost_model = StageCostModel(conf, self.cluster)
        scheduler = WaveScheduler(conf)
        network = NetworkModel(conf, self.cluster)
        memory = MemoryModel(conf)
        serializer = SerializerModel(conf)

        stages = job.topological_stages()
        shuffle_in_of, shuffle_out_of = self._resolve_flows(stages)
        cache_hit, resident_per_executor = self._resolve_caching(
            stages, shuffle_in_of, memory, serializer
        )
        reduce_partitions_out = self._downstream_partitions(job, cost_model)

        results = []
        total = 0.0
        for stage in stages:
            shuffle_in = shuffle_in_of[stage.name]
            hit = cache_hit if stage.reads_cached else 0.0
            profile = cost_model.profile(
                stage,
                shuffle_in_bytes=shuffle_in,
                resident_cache_bytes_per_executor=resident_per_executor,
                cache_hit_fraction=hit,
                num_reduce_partitions_out=reduce_partitions_out.get(
                    stage.name, conf.default_parallelism
                ),
            )

            # Network-induced failures on top of memory-induced ones.
            waves = max(1.0, profile.num_tasks / max(conf.total_task_slots, 1))
            sustained_network = profile.network_seconds * waves
            extra_failure = 1.0 - (
                1.0 - network.executor_lost_probability(profile.max_gc_pause_seconds)
            ) * (
                1.0
                - network.fetch_failure_probability(
                    sustained_network, profile.max_gc_pause_seconds
                )
            )

            # Each iteration of an iterative stage is an independent
            # execution: draw it separately so straggler luck averages
            # out instead of being multiplied by ``repeat``.  Beyond a
            # dozen draws the mean is stable; scale the remainder.
            drawn = min(stage.repeat, 12)
            timings = [
                scheduler.stage_time(profile, extra_failure, rng)
                for _ in range(drawn)
            ]
            scale = stage.repeat / drawn
            timing = timings[0]

            overhead = network.broadcast_seconds(stage.broadcast_bytes)
            overhead += self._collect_seconds(stage, conf, serializer)
            driver_penalty = self._driver_pressure_factor(stage, conf, serializer)

            stage_seconds = (
                sum(t.seconds for t in timings) * scale
                + overhead * stage.repeat
            ) * driver_penalty
            stage_gc = sum(t.gc_seconds for t in timings) * scale

            attempt_factor = timing.expected_attempts_per_task * timing.job_rerun_factor
            results.append(
                StageResult(
                    name=stage.name,
                    seconds=stage_seconds,
                    gc_seconds=stage_gc,
                    spill_bytes=profile.spill_bytes * profile.num_tasks * stage.repeat,
                    num_tasks=profile.num_tasks,
                    iterations=stage.repeat,
                    expected_attempts_per_task=timing.expected_attempts_per_task,
                    job_rerun_factor=timing.job_rerun_factor,
                    compute_core_seconds=profile.compute_seconds
                    * profile.num_tasks
                    * stage.repeat
                    * attempt_factor,
                    io_core_seconds=profile.io_seconds
                    * profile.num_tasks
                    * stage.repeat
                    * attempt_factor,
                    shuffle_core_seconds=profile.shuffle_seconds
                    * profile.num_tasks
                    * stage.repeat
                    * attempt_factor,
                )
            )
            total += stage_seconds
            if tele.enabled():
                tele.event(
                    STAGE_COMPLETED,
                    program=job.program,
                    **stage_event_fields(results[-1]),
                )
                if attempt_factor > 1.05:
                    tele.event(
                        STAGE_OOM_RETRY,
                        program=job.program,
                        stage=stage.name,
                        expected_attempts_per_task=timing.expected_attempts_per_task,
                        job_rerun_factor=timing.job_rerun_factor,
                    )

        total *= float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))
        return RunResult(
            program=job.program,
            datasize_bytes=job.datasize_bytes,
            seconds=total,
            stages=tuple(results),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_flows(stages) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Propagate shuffle volumes through the DAG (per iteration).

        A stage's shuffle input is the sum of its parents' shuffle
        output; its own output is ``(input + shuffle-in) x ratio``.
        Stages must already be in topological order.
        """
        shuffle_in: Dict[str, float] = {}
        shuffle_out: Dict[str, float] = {}
        for stage in stages:
            incoming = sum(shuffle_out[p] for p in stage.parents)
            shuffle_in[stage.name] = incoming
            shuffle_out[stage.name] = (
                stage.input_bytes + incoming
            ) * stage.shuffle_out_ratio
        return shuffle_in, shuffle_out

    def _resolve_caching(
        self,
        stages,
        shuffle_in_of: Dict[str, float],
        memory: MemoryModel,
        serializer: SerializerModel,
    ):
        """Admission of cached RDDs into storage memory.

        Returns (cache_hit_fraction, resident_cached_bytes_per_executor).
        """
        cached_raw = sum(
            s.input_bytes + shuffle_in_of[s.name]
            for s in stages
            if s.cache_output
        )
        footprint = cached_raw * serializer.cached_bytes_per_raw_byte()
        hit = memory.cache_hit_fraction(footprint)
        resident = footprint * hit
        per_executor = resident / max(memory.conf.num_executors, 1)
        return hit, per_executor

    def _downstream_partitions(self, job: JobSpec, cost_model: StageCostModel):
        """Map stage name -> partition count of its widest consumer."""
        out: Dict[str, int] = {}
        for stage in job.stages:
            for parent in stage.parents:
                out[parent] = max(out.get(parent, 0), cost_model.num_partitions(stage))
        return out

    def _collect_seconds(
        self, stage: StageSpec, conf: SparkConf, serializer: SerializerModel
    ) -> float:
        """Driver-side cost of collecting a stage's result."""
        if stage.collect_bytes <= 0:
            return 0.0
        transfer = stage.collect_bytes / self.cluster.network_bandwidth_bytes_per_s
        deser = stage.collect_bytes * serializer.deserialize_seconds_per_byte()
        # The driver processes results with its own cores.
        return transfer + deser / max(conf.driver_cores, 1)

    def _driver_pressure_factor(
        self, stage: StageSpec, conf: SparkConf, serializer: SerializerModel
    ) -> float:
        """Penalty when collected results strain the driver heap.

        An undersized ``spark.driver.memory`` facing a large collect
        triggers driver GC storms and, past the heap size, job-killing
        driver OOMs that force re-submission.
        """
        if stage.collect_bytes <= 0:
            return 1.0
        live = stage.collect_bytes * serializer.memory_expansion()
        occupancy = live / max(conf.driver_memory, 1)
        if occupancy < 0.5:
            return 1.0
        if occupancy < 1.0:
            return 1.0 + 1.5 * (occupancy - 0.5)  # GC storm regime
        return min(1.75 + 2.0 * (occupancy - 1.0), 6.0)  # OOM/re-submit regime

    # ------------------------------------------------------------------
    def _run_locally(
        self, job: JobSpec, conf: SparkConf, rng: np.random.Generator
    ) -> RunResult:
        """Whole-job local execution on the driver (small inputs only)."""
        results = []
        total = 0.0
        for stage in job.topological_stages():
            core_seconds = (
                (stage.input_bytes / MB) * stage.cpu_seconds_per_mb * stage.repeat
            )
            seconds = core_seconds / max(conf.driver_cores, 1) + 0.05 * stage.repeat
            results.append(
                StageResult(
                    name=stage.name,
                    seconds=seconds,
                    gc_seconds=0.02 * seconds,
                    spill_bytes=0.0,
                    num_tasks=1,
                    iterations=stage.repeat,
                    expected_attempts_per_task=1.0,
                    job_rerun_factor=1.0,
                    compute_core_seconds=core_seconds,
                    io_core_seconds=0.0,
                    shuffle_core_seconds=0.0,
                )
            )
            total += seconds
            if tele.enabled():
                tele.event(
                    STAGE_COMPLETED,
                    program=job.program,
                    local=True,
                    **stage_event_fields(results[-1]),
                )
        total *= float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))
        return RunResult(
            program=job.program,
            datasize_bytes=job.datasize_bytes,
            seconds=total,
            stages=tuple(results),
        )
