"""Typed view over a Spark configuration plus derived runtime quantities.

:class:`SparkConf` wraps a :class:`~repro.common.space.Configuration`
drawn from the Table-2 space and exposes each parameter as a typed
property, plus the quantities Spark derives from them at job-submission
time — most importantly the *executor packing*: how many executors fit on
each worker given ``spark.executor.cores`` and ``spark.executor.memory``,
and hence how many concurrent task slots the job has.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.common.space import Configuration
from repro.common.units import KB, MB
from repro.sparksim.cluster import ClusterSpec
from repro.sparksim.confspace import SPARK_CONF_SPACE

#: Spark reserves a flat 300 MB of each executor heap (Section 2.1).
RESERVED_MEMORY_BYTES = 300 * MB


class SparkConf:
    """A Table-2 configuration bound to a cluster.

    Parameters
    ----------
    config:
        A configuration from :data:`SPARK_CONF_SPACE` (or a plain dict of
        overrides, filled in with defaults).
    cluster:
        Hardware the job will run on; drives executor packing.
    """

    def __init__(self, config, cluster: ClusterSpec):
        if isinstance(config, Configuration):
            self.config = config
        else:
            self.config = SPARK_CONF_SPACE.from_dict(dict(config or {}))
        self.cluster = cluster

    def __getitem__(self, name: str):
        return self.config[self.config.space.resolve_name(name)]

    # ------------------------------------------------------------------
    # Raw parameter views (typed, unit-converted to bytes/seconds)
    # ------------------------------------------------------------------
    @property
    def reducer_max_size_in_flight(self) -> int:
        return self["spark.reducer.maxSizeInFlight"] * MB

    @property
    def shuffle_file_buffer(self) -> int:
        return self["spark.shuffle.file.buffer"] * KB

    @property
    def bypass_merge_threshold(self) -> int:
        return self["spark.shuffle.sort.bypassMergeThreshold"]

    @property
    def speculation(self) -> bool:
        return self["spark.speculation"]

    @property
    def speculation_interval(self) -> float:
        return self["spark.speculation.interval"] / 1000.0  # ms -> s

    @property
    def speculation_multiplier(self) -> float:
        return self["spark.speculation.multiplier"]

    @property
    def speculation_quantile(self) -> float:
        return self["spark.speculation.quantile"]

    @property
    def broadcast_block_size(self) -> int:
        return self["spark.broadcast.blockSize"] * MB

    @property
    def compression_codec(self) -> str:
        return self["spark.io.compression.codec"]

    @property
    def codec_block_size(self) -> int:
        """Block size of the *active* codec, in bytes (lzf is unblocked)."""
        if self.compression_codec == "lz4":
            return self["spark.io.compression.lz4.blockSize"] * KB
        if self.compression_codec == "snappy":
            return self["spark.io.compression.snappy.blockSize"] * KB
        return 32 * KB

    @property
    def kryo_reference_tracking(self) -> bool:
        return self["spark.kryo.referenceTracking"]

    @property
    def kryo_buffer_max(self) -> int:
        return self["spark.kryoserializer.buffer.max"] * MB

    @property
    def kryo_buffer(self) -> int:
        return self["spark.kryoserializer.buffer"] * KB

    @property
    def driver_cores(self) -> int:
        return self["spark.driver.cores"]

    @property
    def executor_cores(self) -> int:
        return self["spark.executor.cores"]

    @property
    def driver_memory(self) -> int:
        return self["spark.driver.memory"] * MB

    @property
    def executor_memory(self) -> int:
        return self["spark.executor.memory"] * MB

    @property
    def memory_map_threshold(self) -> int:
        return self["spark.storage.memoryMapThreshold"] * MB

    @property
    def akka_failure_threshold(self) -> int:
        return self["spark.akka.failure.detector.threshold"]

    @property
    def akka_heartbeat_pauses(self) -> float:
        return float(self["spark.akka.heartbeat.pauses"])

    @property
    def akka_heartbeat_interval(self) -> float:
        return float(self["spark.akka.heartbeat.interval"])

    @property
    def akka_threads(self) -> int:
        return self["spark.akka.threads"]

    @property
    def network_timeout(self) -> float:
        return float(self["spark.network.timeout"])

    @property
    def locality_wait(self) -> float:
        return float(self["spark.locality.wait"])

    @property
    def revive_interval(self) -> float:
        return float(self["spark.scheduler.revive.interval"])

    @property
    def task_max_failures(self) -> int:
        return self["spark.task.maxFailures"]

    @property
    def shuffle_compress(self) -> bool:
        return self["spark.shuffle.compress"]

    @property
    def consolidate_files(self) -> bool:
        return self["spark.shuffle.consolidateFiles"]

    @property
    def memory_fraction(self) -> float:
        return self["spark.memory.fraction"]

    @property
    def shuffle_spill(self) -> bool:
        return self["spark.shuffle.spill"]

    @property
    def shuffle_spill_compress(self) -> bool:
        return self["spark.shuffle.spill.compress"]

    @property
    def broadcast_compress(self) -> bool:
        return self["spark.broadcast.compress"]

    @property
    def rdd_compress(self) -> bool:
        return self["spark.rdd.compress"]

    @property
    def serializer(self) -> str:
        return self["spark.serializer"]

    @property
    def storage_fraction(self) -> float:
        return self["spark.memory.storageFraction"]

    @property
    def local_execution(self) -> bool:
        return self["spark.localExecution.enabled"]

    @property
    def default_parallelism(self) -> int:
        return self["spark.default.parallelism"]

    @property
    def off_heap_enabled(self) -> bool:
        return self["spark.memory.offHeap.enabled"]

    @property
    def shuffle_manager(self) -> str:
        return self["spark.shuffle.manager"]

    @property
    def off_heap_size(self) -> int:
        return (self["spark.memory.offHeap.size"] * MB) if self.off_heap_enabled else 0

    # ------------------------------------------------------------------
    # Derived executor packing
    # ------------------------------------------------------------------
    @cached_property
    def executors_per_node(self) -> float:
        """How many executors the standalone master packs on one worker.

        Limited both by cores (one executor claims ``executor.cores``
        cores) and by memory (each claims an ``executor.memory`` heap
        plus ~10% JVM overhead).  Modelled *fractionally*: the capacity
        ratio is used directly instead of its floor, so the packing
        response is smooth in the memory/core knobs (on a real cluster
        the floor staircase exists but its effect washes out across
        heterogeneous waves; a smooth response is also what keeps the
        substrate learnable at the paper's training-set sizes).  At
        least one executor per node always launches — standalone mode
        overcommits rather than refusing to start.
        """
        by_cores = self.cluster.cores_per_node / self.executor_cores
        overhead = self.executor_memory * 1.10
        by_memory = self.cluster.usable_memory_per_node_bytes / overhead
        return max(1.0, min(by_cores, by_memory))

    @cached_property
    def num_executors(self) -> float:
        return self.executors_per_node * self.cluster.worker_nodes

    @cached_property
    def total_task_slots(self) -> float:
        """Cluster-wide concurrent tasks (executors x cores-per-executor)."""
        return self.num_executors * self.executor_cores

    @cached_property
    def spark_memory_per_executor(self) -> float:
        """Unified (execution + storage) region per executor, in bytes."""
        usable_heap = max(self.executor_memory - RESERVED_MEMORY_BYTES, 16 * MB)
        return usable_heap * self.memory_fraction

    @cached_property
    def user_memory_per_executor(self) -> float:
        """User-object region: (heap - 300 MB) * (1 - memory.fraction)."""
        usable_heap = max(self.executor_memory - RESERVED_MEMORY_BYTES, 16 * MB)
        return usable_heap * (1.0 - self.memory_fraction)

    @cached_property
    def protected_storage_per_executor(self) -> float:
        """Storage memory immune to eviction by execution (bytes)."""
        return self.spark_memory_per_executor * self.storage_fraction

    @cached_property
    def execution_memory_per_task(self) -> float:
        """Upper bound on one task's execution memory (empty cache).

        Unified memory management lets execution use the whole Spark
        region when no storage is resident; see
        :meth:`repro.sparksim.memory.MemoryModel.execution_available_per_task`
        for the cache-aware figure the simulator actually uses.
        """
        per_task = self.spark_memory_per_executor / self.executor_cores
        return per_task + self.off_heap_size / self.executor_cores

    def describe(self) -> str:
        """One-line summary used in example scripts and logs."""
        return (
            f"{self.num_executors} executors x {self.executor_cores} cores, "
            f"{self['spark.executor.memory']} MB heap, "
            f"serializer={self.serializer}, codec={self.compression_codec}, "
            f"parallelism={self.default_parallelism}"
        )
