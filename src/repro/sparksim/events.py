"""Canonical telemetry fields for simulator observations.

The single source of truth for what a stage observation *is* when it
leaves the simulator: the same field dictionaries are emitted as
``stage.completed`` telemetry events by
:class:`~repro.sparksim.simulator.SparkSimulator` and consumed by
:mod:`repro.sparksim.report` to render run reports — so the event log
and the human-readable report can never drift apart, and a saved
event log can be summarized back into the same per-stage table
(:func:`stage_table_from_records`, used by ``repro trace``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.common.units import fmt_bytes, fmt_duration

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.sparksim.simulator import StageResult

#: Event names the simulator emits.
STAGE_COMPLETED = "stage.completed"
STAGE_OOM_RETRY = "stage.oom_retry"
RUN_SPAN = "sim.run"

#: Event names the shared-cluster scenario layer emits
#: (:mod:`repro.sparksim.scenario`): one per job-lifecycle transition,
#: plus one per spot-node revocation, all under a ``scenario.run`` span.
SCENARIO_JOB_ARRIVED = "scenario.job_arrived"
SCENARIO_JOB_STARTED = "scenario.job_started"
SCENARIO_JOB_FINISHED = "scenario.job_finished"
SCENARIO_REVOCATION = "scenario.revocation"
SCENARIO_SPAN = "scenario.run"


def stage_event_fields(stage: "StageResult") -> Dict[str, object]:
    """The canonical field dict of one stage observation."""
    return {
        "stage": stage.name,
        "seconds": stage.seconds,
        "gc_seconds": stage.gc_seconds,
        "spill_bytes": stage.spill_bytes,
        "num_tasks": stage.num_tasks,
        "iterations": stage.iterations,
        "expected_attempts_per_task": stage.expected_attempts_per_task,
        "job_rerun_factor": stage.job_rerun_factor,
        "compute_core_seconds": stage.compute_core_seconds,
        "io_core_seconds": stage.io_core_seconds,
        "shuffle_core_seconds": stage.shuffle_core_seconds,
    }


def stage_fields_from_record(record: Dict[str, object]) -> Dict[str, object]:
    """Unwrap a telemetry record (or accept a raw field dict as-is)."""
    fields = record.get("fields")
    if isinstance(fields, dict) and "stage" in fields:
        return fields
    return record


def stage_table_from_records(records: Iterable[Dict[str, object]]) -> str:
    """Aggregate ``stage.completed`` records into a per-stage text table.

    Accepts full telemetry records (event-log lines) or bare field
    dicts; records that are not stage completions are ignored.  Returns
    "" when no stage events are present.
    """
    rows: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for record in records:
        if record.get("kind") == "event" and record.get("name") != STAGE_COMPLETED:
            continue
        fields = stage_fields_from_record(record)
        name = fields.get("stage")
        if name is None:
            continue
        name = str(name)
        if name not in rows:
            rows[name] = {"runs": 0, "seconds": 0.0, "gc": 0.0, "spill": 0.0}
            order.append(name)
        agg = rows[name]
        agg["runs"] += 1
        agg["seconds"] += float(fields.get("seconds", 0.0))
        agg["gc"] += float(fields.get("gc_seconds", 0.0))
        agg["spill"] += float(fields.get("spill_bytes", 0.0))
    if not rows:
        return ""
    name_width = max(len(n) for n in order + ["stage"])
    lines = [
        f"{'stage':<{name_width}} {'runs':>6} {'total':>10} {'gc':>10} {'spill':>10}"
    ]
    for name in order:
        agg = rows[name]
        lines.append(
            f"{name:<{name_width}} {int(agg['runs']):>6d} "
            f"{fmt_duration(agg['seconds']):>10} {fmt_duration(agg['gc']):>10} "
            f"{fmt_bytes(agg['spill']):>10}"
        )
    return "\n".join(lines)
