"""TeraSort: CPU- and memory-intensive full-data shuffle (10-50 GB).

Matches the paper's description (Section 5.8): two stages, Stage1 a
sampling/scan pass (~10% of runtime), Stage2 the shuffle-sort-write that
dominates (~90%).  Every input byte crosses the shuffle, so TeraSort is
the stress test for the shuffle and memory knobs, and the workload whose
Stage2 GC behaviour Figure 14 dissects.
"""

from __future__ import annotations

from repro.common.units import GB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload


class TeraSort(Workload):
    name = "TeraSort"
    abbr = "TS"
    paper_sizes = (10.0, 20.0, 30.0, 40.0, 50.0)
    unit = "GB"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * GB

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="stage1-sample-map",
                input_bytes=data,
                cpu_seconds_per_mb=0.006,
                shuffle_out_ratio=1.0,  # every byte is repartitioned
                working_set_factor=0.35,  # streaming shuffle write
                record_bytes=100.0,  # classic 100-byte TeraSort records
                skew=0.12,
            ),
            StageSpec(
                name="stage2-sort-write",
                parents=("stage1-sample-map",),
                cpu_seconds_per_mb=0.016,
                working_set_factor=1.25,  # holds its partition to sort it
                output_bytes=data,
                record_bytes=100.0,
                skew=0.18,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)
