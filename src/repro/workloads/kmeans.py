"""KMeans: cached-RDD iterative clustering (160-288 million points).

Five stages mirroring Figure 13's decomposition: StageA reads and caches
the points, StageB samples initial centers, StageC iteratively
aggregates/collects (the dominant stage), StageD collects assignments,
StageE summarizes.  Every iteration broadcasts the centroids and
collects partial sums — the pattern that makes KMeans love big storage
memory (cache residency) and punish undersized heaps with GC storms.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload

#: Serialized bytes per point: ~20 double features + vector overhead.
BYTES_PER_POINT = 224.0
#: Lloyd iterations (HiBench default ballpark).
ITERATIONS = 10


class KMeans(Workload):
    name = "KMeans"
    abbr = "KM"
    paper_sizes = (160.0, 192.0, 224.0, 256.0, 288.0)
    unit = "million points"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * 1e6 * BYTES_PER_POINT

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        centroid_bytes = 4.0 * MB  # k centers x 20 dims, replicated sums
        stages = (
            StageSpec(
                name="stageA-read-cache",
                input_bytes=data,
                cpu_seconds_per_mb=0.012,
                cache_output="points",
                working_set_factor=0.35,  # parse-and-cache, mostly streaming
                record_bytes=BYTES_PER_POINT,
                skew=0.14,
            ),
            StageSpec(
                name="stageB-sample",
                parents=("stageA-read-cache",),
                reads_cached="points",
                input_bytes=data * 0.05,
                cpu_seconds_per_mb=0.004,
                working_set_factor=0.1,
                collect_bytes=2 * MB,
                record_bytes=BYTES_PER_POINT,
                skew=0.12,
            ),
            StageSpec(
                name="stageC-iterate",
                parents=("stageA-read-cache",),
                reads_cached="points",
                input_bytes=data,
                repeat=ITERATIONS,
                cpu_seconds_per_mb=0.022,  # distance computation per point
                shuffle_out_ratio=0.0006,  # tiny per-partition partial sums
                map_side_combine=True,
                working_set_factor=0.08,  # streams cached points; state is k sums
                broadcast_bytes=centroid_bytes,
                collect_bytes=centroid_bytes,
                record_bytes=BYTES_PER_POINT,
                skew=0.16,
            ),
            StageSpec(
                name="stageD-collect",
                parents=("stageC-iterate",),
                reads_cached="points",
                input_bytes=data * 0.2,
                cpu_seconds_per_mb=0.006,
                working_set_factor=0.12,
                collect_bytes=24 * MB,
                record_bytes=BYTES_PER_POINT,
                skew=0.14,
            ),
            StageSpec(
                name="stageE-summary",
                parents=("stageD-collect",),
                input_bytes=data * 0.002,
                cpu_seconds_per_mb=0.004,
                collect_bytes=1 * MB,
                skew=0.10,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)
