"""Extension workloads beyond the paper's six (Table 1).

The paper evaluates on six HiBench programs; HiBench itself ships more.
These three extend the library's coverage to behaviour classes the
Table-1 set under-represents, and exercise the same public APIs
(collection, modeling, tuning) end to end:

* **LogisticRegression (LR)** — MLlib-style gradient descent: cached
  feature matrix, many CPU-heavy iterations, tiny shuffles (gradient
  aggregation).  Like KMeans but with a higher compute-to-data ratio.
* **Join (JN)** — SQL-style two-table equi-join: two input scans
  co-shuffled into one join stage; the join side's hash table makes it
  the most memory-hungry *non-iterative* workload.
* **Scan (SC)** — selection/projection over a large table: I/O-bound,
  almost configuration-insensitive beyond executor packing; useful as a
  control workload where tuning *should* win little.

They are intentionally **not** in :data:`ALL_WORKLOADS` (which mirrors
Table 1); :func:`repro.workloads.get_workload` finds them by name.
"""

from __future__ import annotations

from repro.common.units import GB, MB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload

#: Bytes per (features + label) example row, ~100 doubles.
BYTES_PER_EXAMPLE = 840.0
LR_ITERATIONS = 15


class LogisticRegression(Workload):
    name = "LogisticRegression"
    abbr = "LR"
    paper_sizes = (20.0, 30.0, 40.0, 50.0, 60.0)
    unit = "million examples"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * 1e6 * BYTES_PER_EXAMPLE

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="load-cache-examples",
                input_bytes=data,
                cpu_seconds_per_mb=0.010,
                cache_output="examples",
                working_set_factor=0.3,
                record_bytes=BYTES_PER_EXAMPLE,
                skew=0.12,
            ),
            StageSpec(
                name="gradient-iterations",
                parents=("load-cache-examples",),
                reads_cached="examples",
                input_bytes=data,
                repeat=LR_ITERATIONS,
                cpu_seconds_per_mb=0.035,  # dot products dominate
                shuffle_out_ratio=0.0004,  # gradient vectors only
                map_side_combine=True,
                working_set_factor=0.06,
                broadcast_bytes=1 * MB,  # the weight vector
                collect_bytes=1 * MB,
                record_bytes=BYTES_PER_EXAMPLE,
                skew=0.12,
            ),
            StageSpec(
                name="final-model",
                parents=("gradient-iterations",),
                input_bytes=data * 0.001,
                cpu_seconds_per_mb=0.004,
                collect_bytes=2 * MB,
                skew=0.10,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)


class Join(Workload):
    name = "Join"
    abbr = "JN"
    paper_sizes = (20.0, 40.0, 60.0, 80.0, 100.0)
    unit = "GB"

    #: The dimension table is this fraction of the fact table.
    DIMENSION_RATIO = 0.25

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * GB

    def job(self, size: float) -> JobSpec:
        fact = self.bytes_for(size)
        dimension = fact * self.DIMENSION_RATIO
        stages = (
            StageSpec(
                name="scan-fact",
                input_bytes=fact,
                cpu_seconds_per_mb=0.006,
                shuffle_out_ratio=0.8,  # repartition by join key
                working_set_factor=0.3,
                record_bytes=512.0,
                skew=0.15,
            ),
            StageSpec(
                name="scan-dimension",
                input_bytes=dimension,
                cpu_seconds_per_mb=0.006,
                shuffle_out_ratio=0.9,
                working_set_factor=0.3,
                record_bytes=256.0,
                skew=0.15,
            ),
            StageSpec(
                name="hash-join",
                parents=("scan-fact", "scan-dimension"),
                cpu_seconds_per_mb=0.012,
                working_set_factor=1.1,  # build side lives in memory
                unspillable_fraction=0.30,  # hash table pins its buckets
                shuffle_out_ratio=0.0,
                output_bytes=fact * 0.4,
                record_bytes=768.0,
                skew=0.30,  # key skew — hot join keys
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=fact, stages=stages)


class Scan(Workload):
    name = "Scan"
    abbr = "SC"
    paper_sizes = (50.0, 100.0, 150.0, 200.0, 250.0)
    unit = "GB"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * GB

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="scan-filter-project",
                input_bytes=data,
                cpu_seconds_per_mb=0.004,  # predicate + projection only
                working_set_factor=0.05,  # pure streaming
                output_bytes=data * 0.05,
                record_bytes=256.0,
                skew=0.10,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)


#: Extension registry (not part of the paper's Table 1).
EXTRA_WORKLOADS = {w.abbr: w for w in (LogisticRegression(), Join(), Scan())}
