"""WordCount: the CPU-intensive baseline (Table 1: 80-160 GB of text).

Two stages, like Hadoop's classic: a map stage that tokenizes and
combines counts map-side, and a reduce stage that merges per-word
totals.  Shuffle volume is small relative to input (map-side combining
collapses duplicates), which is what makes WC CPU-bound — and why the
expert guideline of "2-3 tasks per core" backfires on it (Section 5.6).
"""

from __future__ import annotations

from repro.common.units import GB, MB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload


class WordCount(Workload):
    name = "WordCount"
    abbr = "WC"
    paper_sizes = (80.0, 100.0, 120.0, 140.0, 160.0)
    unit = "GB"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * GB

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="tokenize-combine",
                input_bytes=data,
                cpu_seconds_per_mb=0.055,
                shuffle_out_ratio=0.07,
                map_side_combine=True,
                working_set_factor=0.45,
                unspillable_fraction=0.15,
                record_bytes=64.0,
                skew=0.15,
            ),
            StageSpec(
                name="merge-counts",
                parents=("tokenize-combine",),
                cpu_seconds_per_mb=0.020,
                working_set_factor=1.0,
                unspillable_fraction=0.20,
                output_bytes=data * 0.01,
                record_bytes=32.0,
                skew=0.25,  # hot words concentrate on few reducers
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)
