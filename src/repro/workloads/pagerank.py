"""PageRank: iterative link analysis with heavy shuffles (1.2-2 M pages).

Three phases: load+cache the link structure, run the rank-contribution
iterations (each a wide shuffle whose volume rivals the input — the
paper's "iteration selectivity of PageRank is much higher compared to
KMeans"), then write ranks.  Power-law in-degree gives the iteration
stage the largest task skew of the suite.
"""

from __future__ import annotations

from repro.common.units import KB, MB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload

#: Raw bytes per page: outlink list + key for a HiBench-style synthetic
#: web graph (the evaluation corpus, unlike the denser motivation corpus).
BYTES_PER_PAGE = 2.0 * KB
ITERATIONS = 8


class PageRank(Workload):
    name = "PageRank"
    abbr = "PR"
    paper_sizes = (1.2, 1.4, 1.6, 1.8, 2.0)
    unit = "million pages"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * 1e6 * BYTES_PER_PAGE

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="load-links",
                input_bytes=data,
                cpu_seconds_per_mb=0.014,
                shuffle_out_ratio=0.5,  # groupBy page to build link lists
                cache_output="links",
                working_set_factor=1.2,
                unspillable_fraction=0.30,  # groupByKey pins link lists
                record_bytes=2048.0,
                skew=0.22,
            ),
            StageSpec(
                name="rank-iterations",
                parents=("load-links",),
                reads_cached="links",
                input_bytes=data * 0.6,
                repeat=ITERATIONS,
                cpu_seconds_per_mb=0.017,
                shuffle_out_ratio=0.45,  # contributions flood the network
                working_set_factor=1.3,
                unspillable_fraction=0.30,  # join state pins current groups
                broadcast_bytes=1 * MB,
                record_bytes=2048.0,
                skew=0.30,  # power-law degrees -> heavy stragglers
            ),
            StageSpec(
                name="write-ranks",
                parents=("rank-iterations",),
                cpu_seconds_per_mb=0.005,
                output_bytes=data * 0.02,
                record_bytes=64.0,
                skew=0.12,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)
