"""Lookup table of the six evaluated programs (Table 1)."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.bayes import Bayes
from repro.workloads.kmeans import KMeans
from repro.workloads.nweight import NWeight
from repro.workloads.pagerank import PageRank
from repro.workloads.terasort import TeraSort
from repro.workloads.wordcount import WordCount

#: Table 1 order: PR, KM, BA, NW, WC, TS.
ALL_WORKLOADS: Dict[str, Workload] = {
    w.abbr: w
    for w in (PageRank(), KMeans(), Bayes(), NWeight(), WordCount(), TeraSort())
}


def workload_names() -> List[str]:
    """Paper abbreviations in Table-1 order."""
    return list(ALL_WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a workload by abbreviation ("PR") or full name ("PageRank").

    Searches Table 1's six programs first, then the extension workloads
    (:mod:`repro.workloads.extended`).
    """
    from repro.workloads.extended import EXTRA_WORKLOADS

    key = name.strip()
    for registry in (ALL_WORKLOADS, EXTRA_WORKLOADS):
        if key.upper() in registry:
            return registry[key.upper()]
        for workload in registry.values():
            if workload.name.lower() == key.lower():
                return workload
    known = list(ALL_WORKLOADS.values()) + list(EXTRA_WORKLOADS.values())
    raise KeyError(
        f"unknown workload {name!r}; available: "
        + ", ".join(f"{w.abbr} ({w.name})" for w in known)
    )
