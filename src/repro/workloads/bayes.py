"""Naive Bayes training: poor instruction locality, big model collect.

(Table 1: 1.2-2 M pages.)  Tokenize/vectorize the corpus with map-side
term aggregation, aggregate per-class term frequencies into large hash
tables, then pull the trained model back to the driver — the last step
is what exposes ``spark.driver.memory`` for this workload.
"""

from __future__ import annotations

from repro.common.units import KB, MB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload

#: Bytes per page of the classification corpus.
BYTES_PER_PAGE = 25.0 * KB


class Bayes(Workload):
    name = "Bayes"
    abbr = "BA"
    paper_sizes = (1.2, 1.4, 1.6, 1.8, 2.0)
    unit = "million pages"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * 1e6 * BYTES_PER_PAGE

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="tokenize-vectorize",
                input_bytes=data,
                cpu_seconds_per_mb=0.048,  # tokenization is branchy
                shuffle_out_ratio=0.30,
                map_side_combine=True,
                working_set_factor=0.65,
                unspillable_fraction=0.14,
                record_bytes=BYTES_PER_PAGE,
                skew=0.20,
            ),
            StageSpec(
                name="aggregate-term-freqs",
                parents=("tokenize-vectorize",),
                cpu_seconds_per_mb=0.022,
                shuffle_out_ratio=0.12,
                working_set_factor=1.0,  # per-class term hash tables
                unspillable_fraction=0.22,
                record_bytes=512.0,
                skew=0.24,
            ),
            StageSpec(
                name="train-collect-model",
                parents=("aggregate-term-freqs",),
                cpu_seconds_per_mb=0.010,
                working_set_factor=0.9,
                collect_bytes=160 * MB,  # the model comes home
                record_bytes=512.0,
                skew=0.15,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)
