"""NWeight: GraphX n-hop association, the memory hog (10.5-14.5 M edges).

Section 4.1: "it consumes a lot of memory that it stores the whole graph
in memory and iterates over the vertices".  Build+cache the graph, then
propagate weights n hops — each hop amplifies message volume past the
input size.  Adjacency rows are multi-megabyte records, which is what
exposes ``spark.kryoserializer.buffer.max`` on this workload.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.sparksim.dag import JobSpec, StageSpec
from repro.workloads.base import Workload

#: Bytes per edge including weights and vertex attributes.
BYTES_PER_EDGE = 480.0
HOPS = 3


class NWeight(Workload):
    name = "NWeight"
    abbr = "NW"
    paper_sizes = (10.5, 11.5, 12.5, 13.5, 14.5)
    unit = "million edges"

    def bytes_for(self, size: float) -> float:
        return self.validate_size(size) * 1e6 * BYTES_PER_EDGE

    def job(self, size: float) -> JobSpec:
        data = self.bytes_for(size)
        stages = (
            StageSpec(
                name="build-graph",
                input_bytes=data,
                cpu_seconds_per_mb=0.030,
                shuffle_out_ratio=0.8,  # edge partitioning shuffle
                cache_output="graph",
                working_set_factor=1.3,
                unspillable_fraction=0.28,  # partitioned adjacency is mostly live
                record_bytes=12 * MB,  # adjacency rows are huge
                skew=0.28,
            ),
            StageSpec(
                name="propagate-hops",
                parents=("build-graph",),
                reads_cached="graph",
                input_bytes=data,
                repeat=HOPS,
                cpu_seconds_per_mb=0.038,
                shuffle_out_ratio=1.0,  # messages amplify per hop
                working_set_factor=1.45,
                unspillable_fraction=0.28,
                broadcast_bytes=2 * MB,
                record_bytes=12 * MB,
                skew=0.32,
            ),
            StageSpec(
                name="write-associations",
                parents=("propagate-hops",),
                cpu_seconds_per_mb=0.006,
                output_bytes=data * 0.2,
                record_bytes=1024.0,
                skew=0.14,
            ),
        )
        return JobSpec(program=self.abbr, datasize_bytes=data, stages=stages)
