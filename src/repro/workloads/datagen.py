"""Input dataset size generation (the paper's DG, Section 3.1).

The collecting component needs ``m`` input datasets whose sizes differ
pairwise by at least 10% (Equation 4):

    |DS_p - DS_q| / min(DS_p, DS_q) >= 10%

The paper sets ``m = 10`` "to achieve a good trade-off between the size
diversity of the input datasets and the time to collect the performance
data".  Geometric spacing guarantees the constraint whenever the total
range allows it; otherwise the generator widens the range symmetrically
until it does.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: Equation (4)'s minimum pairwise relative gap.
MIN_RELATIVE_GAP = 0.10
#: The paper's default number of training dataset sizes.
DEFAULT_NUM_SIZES = 10


class DatasetSizeGenerator:
    """Generates training dataset sizes satisfying Equation (4)."""

    def __init__(self, num_sizes: int = DEFAULT_NUM_SIZES, min_gap: float = MIN_RELATIVE_GAP):
        if num_sizes < 1:
            raise ValueError("need at least one dataset size")
        if min_gap <= 0:
            raise ValueError("minimum gap must be positive")
        self.num_sizes = num_sizes
        self.min_gap = min_gap

    def required_ratio(self) -> float:
        """Smallest high/low ratio that admits ``num_sizes`` sizes."""
        return (1.0 + self.min_gap) ** (self.num_sizes - 1)

    def generate(self, low: float, high: float) -> List[float]:
        """Geometrically spaced sizes in [low, high] honouring the gap.

        If the requested range is too narrow for ``num_sizes`` sizes 10%
        apart, the range is widened symmetrically (in log space) — the
        tuner prefers extra size diversity over silently violating
        Equation (4).
        """
        if low <= 0 or high <= 0 or low > high:
            raise ValueError(f"invalid size range [{low}, {high}]")
        if self.num_sizes == 1:
            return [float(np.sqrt(low * high))]
        needed = self.required_ratio()
        if high / low < needed:
            center = np.sqrt(low * high)
            half = np.sqrt(needed)
            low, high = center / half, center * half
        sizes = np.geomspace(low, high, self.num_sizes)
        return [float(s) for s in sizes]

    @staticmethod
    def satisfies_gap(sizes: List[float], min_gap: float = MIN_RELATIVE_GAP) -> bool:
        """Check Equation (4) over all pairs."""
        for i, a in enumerate(sizes):
            for b in sizes[i + 1 :]:
                small, big = (a, b) if a < b else (b, a)
                if (big - small) / small < min_gap * (1 - 1e-9):
                    return False
        return True
