"""The six HiBench-style Spark programs of Table 1.

Each workload compiles a (program, dataset size) pair into a concrete
:class:`~repro.sparksim.dag.JobSpec`, encoding the behavioural traits
Section 4.1 attributes to it: KMeans has good instruction locality but
poor data locality, Bayes the opposite; PageRank has high iteration
selectivity; NWeight is a memory-hungry GraphX job; WordCount is
CPU-intensive; TeraSort is CPU- and memory-intensive.
"""

from repro.workloads.base import Workload
from repro.workloads.datagen import DatasetSizeGenerator
from repro.workloads.registry import ALL_WORKLOADS, get_workload, workload_names

__all__ = [
    "ALL_WORKLOADS",
    "DatasetSizeGenerator",
    "Workload",
    "get_workload",
    "workload_names",
]
