"""Workload base class: natural-unit sizes to concrete job DAGs."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

from repro.sparksim.dag import JobSpec


class Workload(ABC):
    """A Spark program whose input is parameterized by a natural size.

    Sizes use the paper's Table-1 units (million pages, million points,
    GB, ...); :meth:`bytes_for` converts to raw dataset bytes and
    :meth:`job` compiles the full stage DAG for one size.
    """

    #: Full program name, e.g. "PageRank".
    name: str
    #: Paper abbreviation, e.g. "PR".
    abbr: str
    #: The five Table-1 evaluation sizes, in natural units.
    paper_sizes: Tuple[float, ...]
    #: Human-readable unit of ``paper_sizes``.
    unit: str

    @abstractmethod
    def bytes_for(self, size: float) -> float:
        """Raw dataset bytes for a natural-unit size."""

    @abstractmethod
    def job(self, size: float) -> JobSpec:
        """Compile the stage DAG for one input size (natural units)."""

    def size_range(self) -> Tuple[float, float]:
        """Tuning range of input sizes (spans the Table-1 evaluation sizes).

        The collecting component trains on sizes drawn from a slightly
        wider band so the five evaluation sizes are interior points of
        the model's support, as in the paper's setup (10 training sizes
        vs. 5 evaluation sizes).
        """
        low, high = min(self.paper_sizes), max(self.paper_sizes)
        return 0.8 * low, 1.1 * high

    def validate_size(self, size: float) -> float:
        if size <= 0:
            raise ValueError(f"{self.name}: size must be positive, got {size}")
        return float(size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workload {self.name} ({self.abbr})>"
