"""Shared substrate utilities: parameter spaces, deterministic RNG, units.

These modules are dependency-free building blocks used by the Spark/ODC
simulators, the workload definitions, and the DAC tuning core.
"""

from repro.common.rng import derive_rng, stable_seed
from repro.common.space import (
    BoolParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    Parameter,
)
from repro.common.units import GB, KB, MB, fmt_bytes, fmt_duration

__all__ = [
    "BoolParameter",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
    "FloatParameter",
    "GB",
    "IntParameter",
    "KB",
    "MB",
    "Parameter",
    "derive_rng",
    "fmt_bytes",
    "fmt_duration",
    "stable_seed",
]
