"""Generic configuration-space abstraction.

The paper's Configuration Generator (Section 3.1) draws each parameter
uniformly at random within its value range; the Genetic Algorithm
(Section 3.3) and the performance models (Section 3.2) operate on the
numeric encoding of a configuration.  This module provides both views:

* :class:`Parameter` subclasses describe a single knob — its range,
  default, random sampling, and a bijective numeric encoding;
* :class:`ConfigurationSpace` aggregates an ordered list of parameters and
  converts whole configurations to/from feature vectors;
* :class:`Configuration` is an immutable mapping of parameter name to
  value with dict-like access.

The same classes back the Spark space (41 parameters, Table 2) and the
Hadoop-like ODC space used for the Figure 2 sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np


class Parameter:
    """A single tunable knob.

    Subclasses implement sampling, validation, and a numeric encoding used
    by the performance models and the GA.  Encodings are *normalized to
    [0, 1]* so that mutation step sizes and model split thresholds are
    comparable across parameters of wildly different scales (e.g. memory
    in MB vs. a boolean flag).
    """

    name: str
    description: str
    default: Any

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniformly random legal value."""
        raise NotImplementedError

    def validate(self, value: Any) -> Any:
        """Return a legal, canonical version of ``value`` or raise ``ValueError``."""
        raise NotImplementedError

    def encode(self, value: Any) -> float:
        """Map a legal value into [0, 1]."""
        raise NotImplementedError

    def decode(self, x: float) -> Any:
        """Inverse of :meth:`encode` (clipping out-of-range inputs)."""
        raise NotImplementedError

    def grid(self, resolution: int = 5) -> List[Any]:
        """A small set of representative values, used by tests and sweeps."""
        return [self.decode(x) for x in np.linspace(0.0, 1.0, resolution)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, default={self.default!r})"


@dataclass(frozen=True, repr=False)
class IntParameter(Parameter):
    """Integer-valued knob uniform over ``[low, high]`` inclusive."""

    name: str
    low: int
    high: int
    default: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} > high {self.high}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def validate(self, value: Any) -> int:
        ivalue = int(value)
        if ivalue != value and not isinstance(value, (int, np.integer)):
            # Accept exact floats (e.g. 4.0) but reject 4.5.
            if float(value) != ivalue:
                raise ValueError(f"{self.name}: {value!r} is not an integer")
        # The default may legally sit outside the tuning range (e.g.
        # spark.memory.offHeap.size defaults to 0 with range 10-1000).
        if not (self.low <= ivalue <= self.high) and ivalue != self.default:
            raise ValueError(
                f"{self.name}: {ivalue} outside [{self.low}, {self.high}]"
            )
        return ivalue

    def encode(self, value: Any) -> float:
        if self.high == self.low:
            return 0.0
        clipped = min(max(int(value), self.low), self.high)
        return (clipped - self.low) / (self.high - self.low)

    def decode(self, x: float) -> int:
        x = min(max(float(x), 0.0), 1.0)
        return int(round(self.low + x * (self.high - self.low)))


@dataclass(frozen=True, repr=False)
class FloatParameter(Parameter):
    """Real-valued knob uniform over ``[low, high]``."""

    name: str
    low: float
    high: float
    default: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} > high {self.high}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def validate(self, value: Any) -> float:
        fvalue = float(value)
        if not (self.low <= fvalue <= self.high) and fvalue != self.default:
            raise ValueError(
                f"{self.name}: {fvalue} outside [{self.low}, {self.high}]"
            )
        return fvalue

    def encode(self, value: Any) -> float:
        if self.high == self.low:
            return 0.0
        clipped = min(max(float(value), self.low), self.high)
        return (clipped - self.low) / (self.high - self.low)

    def decode(self, x: float) -> float:
        x = min(max(float(x), 0.0), 1.0)
        return float(self.low + x * (self.high - self.low))


@dataclass(frozen=True, repr=False)
class CategoricalParameter(Parameter):
    """Knob taking one of a small set of unordered choices."""

    name: str
    choices: Tuple[Any, ...]
    default: Any
    description: str = ""

    def __post_init__(self) -> None:
        if self.default not in self.choices:
            raise ValueError(f"{self.name}: default {self.default!r} not a choice")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: duplicate choices")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def validate(self, value: Any) -> Any:
        if value not in self.choices:
            raise ValueError(f"{self.name}: {value!r} not in {self.choices}")
        return value

    def encode(self, value: Any) -> float:
        index = self.choices.index(value)
        if len(self.choices) == 1:
            return 0.0
        return index / (len(self.choices) - 1)

    def decode(self, x: float) -> Any:
        x = min(max(float(x), 0.0), 1.0)
        index = int(round(x * (len(self.choices) - 1)))
        return self.choices[index]

    def grid(self, resolution: int = 5) -> List[Any]:
        return list(self.choices)


def BoolParameter(
    name: str, default: bool, description: str = ""
) -> CategoricalParameter:
    """A true/false knob, modelled as a two-choice categorical."""
    return CategoricalParameter(
        name=name, choices=(False, True), default=bool(default), description=description
    )


class Configuration(Mapping[str, Any]):
    """An immutable assignment of values to every parameter of a space.

    Behaves like a read-only mapping; :meth:`replacing` produces modified
    copies (the GA uses this for mutation/crossover results).
    """

    __slots__ = ("_space", "_values")

    def __init__(self, space: "ConfigurationSpace", values: Mapping[str, Any]):
        missing = [p.name for p in space.parameters if p.name not in values]
        if missing:
            raise ValueError(f"missing values for parameters: {missing}")
        extra = [name for name in values if name not in space.names_set]
        if extra:
            raise ValueError(f"unknown parameters: {extra}")
        self._space = space
        self._values = {
            p.name: p.validate(values[p.name]) for p in space.parameters
        }

    @property
    def space(self) -> "ConfigurationSpace":
        return self._space

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self._values.items())))

    def replacing(self, **overrides: Any) -> "Configuration":
        """Return a copy with some parameters changed.

        Keys use underscores in place of dots (``spark_executor_memory``)
        when passed as keyword arguments; exact names may be passed via a
        dict using :meth:`replacing_values`.
        """
        mapped = {key.replace("__", "."): val for key, val in overrides.items()}
        return self.replacing_values(mapped)

    def replacing_values(self, overrides: Mapping[str, Any]) -> "Configuration":
        """Return a copy with the exactly-named parameters changed."""
        resolved: Dict[str, Any] = dict(self._values)
        for key, val in overrides.items():
            name = self._space.resolve_name(key)
            resolved[name] = val
        return Configuration(self._space, resolved)

    def to_vector(self) -> np.ndarray:
        """Normalized numeric encoding (one float in [0,1] per parameter)."""
        return self._space.encode(self)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = ", ".join(f"{k}={v!r}" for k, v in list(self._values.items())[:3])
        return f"Configuration({head}, ... {len(self._values)} params)"


class ConfigurationSpace:
    """An ordered collection of :class:`Parameter` definitions."""

    def __init__(self, parameters: Sequence[Parameter], name: str = "space"):
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        self.name = name
        self.parameters: Tuple[Parameter, ...] = tuple(parameters)
        self.names: Tuple[str, ...] = tuple(names)
        self.names_set = frozenset(names)
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}

    # -- lookup ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.parameters)

    def __contains__(self, name: str) -> bool:
        return name in self.names_set

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[self.resolve_name(name)]

    def resolve_name(self, key: str) -> str:
        """Accept either exact names or underscore-for-dot aliases."""
        if key in self.names_set:
            return key
        dotted = key.replace("_", ".")
        if dotted in self.names_set:
            return dotted
        raise KeyError(f"unknown parameter {key!r} in space {self.name!r}")

    def index_of(self, name: str) -> int:
        return self.names.index(self.resolve_name(name))

    # -- construction ---------------------------------------------------
    def default(self) -> Configuration:
        """The vendor-default configuration (Table 2 last column)."""
        return Configuration(self, {p.name: p.default for p in self.parameters})

    def random(self, rng: np.random.Generator) -> Configuration:
        """One draw of the paper's Configuration Generator (CG)."""
        return Configuration(self, {p.name: p.sample(rng) for p in self.parameters})

    def sample(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        return [self.random(rng) for _ in range(n)]

    def from_dict(self, values: Mapping[str, Any]) -> Configuration:
        """Build a configuration from a possibly partial dict (defaults fill gaps)."""
        merged = {p.name: p.default for p in self.parameters}
        for key, val in values.items():
            merged[self.resolve_name(key)] = val
        return Configuration(self, merged)

    # -- numeric view ---------------------------------------------------
    def encode(self, config: Configuration) -> np.ndarray:
        return np.array(
            [p.encode(config[p.name]) for p in self.parameters], dtype=float
        )

    def decode(self, vector: Sequence[float]) -> Configuration:
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (len(self.parameters),):
            raise ValueError(
                f"expected vector of length {len(self.parameters)}, got {vec.shape}"
            )
        values = {
            p.name: p.decode(x) for p, x in zip(self.parameters, vec)
        }
        return Configuration(self, values)

    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Stack encodings into an (n_configs, n_params) matrix."""
        return np.vstack([self.encode(c) for c in configs]) if configs else (
            np.empty((0, len(self.parameters)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConfigurationSpace({self.name!r}, {len(self.parameters)} params)"
