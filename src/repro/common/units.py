"""Byte and time unit helpers used throughout the simulators."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def fmt_bytes(n: float) -> str:
    """Human-readable byte count.

    >>> fmt_bytes(1536)
    '1.5 KB'
    """
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1024.0 or unit == "PB":
            return f"{value:.1f} {unit}".replace(".0 ", " ")
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration.

    >>> fmt_duration(3725)
    '1h 2m 5s'
    """
    seconds = float(seconds)
    if seconds < 1:
        return f"{seconds * 1000:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h {minutes}m {secs}s"
    return f"{minutes}m {secs}s"
