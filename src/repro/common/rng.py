"""Deterministic random-number-generator derivation.

Every stochastic element in the reproduction (simulated measurement noise,
bootstrap samples, GA operators, configuration sampling) draws from a
``numpy.random.Generator``.  To keep experiments reproducible *and* to make
the simulated cluster behave like a real one — the same (program, datasize,
configuration) always produces the same measurement, while different
configurations perturb execution independently — generators are derived
from stable string keys rather than shared globally.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

_Seedable = Union[str, int, float, bool, bytes]


def stable_seed(*parts: _Seedable) -> int:
    """Derive a 64-bit seed from arbitrary hashable parts.

    Uses BLAKE2b so the mapping is stable across processes and Python
    versions (unlike the builtin ``hash``, which is salted per process).

    >>> stable_seed("kmeans", 1024) == stable_seed("kmeans", 1024)
    True
    >>> stable_seed("kmeans", 1024) != stable_seed("kmeans", 1025)
    True
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, bytes):
            digest.update(part)
        elif isinstance(part, float):
            # repr() keeps full precision; format stability matters more
            # than compactness here.
            digest.update(repr(part).encode("utf-8"))
        else:
            digest.update(str(part).encode("utf-8"))
        digest.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(digest.digest(), "little")


def derive_rng(*parts: _Seedable) -> np.random.Generator:
    """Return a fresh ``numpy.random.Generator`` keyed by ``parts``."""
    return np.random.default_rng(stable_seed(*parts))


def spawn_rngs(base: str, keys: Iterable[_Seedable]) -> list:
    """Derive one generator per key, all rooted at ``base``."""
    return [derive_rng(base, key) for key in keys]
