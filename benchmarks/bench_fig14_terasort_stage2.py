"""Figure 14 bench: TeraSort Stage2 time and GC by configuration.

Paper: Stage2 takes ~90% of the runtime; default >> RFHOC > DAC with
the gap widening as inputs grow, driven by GC; DAC's GC grows more
slowly with input size than default's.  Reproduced claims: stage2
dominance, DAC < default on stage2 everywhere, slower DAC GC growth.
"""

from conftest import report

from repro.experiments import fig14_terasort_stage2
from repro.experiments.common import FAST


def test_fig14_terasort_stage2(benchmark, once):
    result = benchmark.pedantic(fig14_terasort_stage2.run, args=(FAST,), **once)
    report(result.render())
    for size in result.sizes:
        assert result.stage2_seconds[("DAC", size)] < result.stage2_seconds[
            ("default", size)
        ]
    assert result.absolute_increase(
        "DAC", result.gc_seconds
    ) < result.absolute_increase("default", result.gc_seconds)
