"""Figure 7 bench: model error vs training-set size.

Paper: min/mean/max error curves fall as ntrain grows and flatten near
2000 examples.  Reproduced claim: the mean-error curve is improving
from the smallest to the largest training-set size.
"""

from conftest import report

from repro.experiments import fig07_ntrain
from repro.experiments.common import FAST


def test_fig07_ntrain(benchmark, once):
    result = benchmark.pedantic(fig07_ntrain.run, args=(FAST,), **once)
    report(result.render())
    assert result.is_improving
