"""Telemetry overhead: the disabled path must be effectively free.

The instrumentation contract (ISSUE: "provably negligible") is that a
``tele.event(...)``/``tele.span(...)`` call site with telemetry off
costs one module-global load and a ``None`` check.  Two measurements
back that up:

* micro: the per-call cost of the disabled fast path (ns-scale);
* macro: a standard FAST tune run with telemetry off vs on, plus an
  arithmetic bound — (disabled per-call cost) x (records a telemetry'd
  run emits) must stay under 1% of the run's wall time, which holds by
  orders of magnitude and, unlike a wall-clock A/B on a noisy CI
  runner, cannot flake.
"""

import time

from repro import telemetry
from repro.core.tuner import DacTuner
from repro.engine import InProcessBackend
from repro.telemetry import events as tele
from repro.telemetry.metrics import get_registry
from repro.workloads import get_workload

#: The "standard tune run" both overhead benchmarks execute.
TUNE = dict(n_train=60, n_trees=30, seed=0)
TUNE_SIZE, TUNE_GENERATIONS = 10.0, 5


def _tune_once() -> float:
    """One full pipeline run (collect, fit, search); returns wall time."""
    start = time.perf_counter()
    tuner = DacTuner(get_workload("TS"), engine=InProcessBackend(), **TUNE)
    tuner.collect()
    tuner.fit()
    tuner.tune(TUNE_SIZE, generations=TUNE_GENERATIONS)
    return time.perf_counter() - start


def test_event_call_disabled(benchmark):
    """The instrumented hot path with telemetry off (the default)."""
    assert not tele.enabled()
    benchmark(tele.event, "bench.noop", value=1)


def test_event_call_enabled(benchmark):
    """The same call with telemetry on, recording to the ring buffer."""
    with telemetry.session():
        benchmark(tele.event, "bench.noop", value=1)


def test_span_disabled(benchmark):
    assert not tele.enabled()

    def enter_exit():
        with tele.span("bench.span", value=1):
            pass

    benchmark(enter_exit)


def test_counter_disabled(benchmark):
    """Metrics through the null registry (shared no-op instrument)."""
    registry = get_registry()
    assert not registry.enabled
    counter = registry.counter("bench.noop")
    benchmark(counter.inc)


def test_tune_run_telemetry_off(benchmark, once):
    """Baseline: the standard tune run with telemetry off."""
    assert benchmark.pedantic(_tune_once, **once) > 0


def test_tune_run_telemetry_on(benchmark, once):
    """The same run with the full pipeline on (ring + live registry)."""
    def tune_with_telemetry():
        with telemetry.session():
            return _tune_once()

    assert benchmark.pedantic(tune_with_telemetry, **once) > 0


def test_disabled_overhead_below_one_percent():
    """Arithmetic bound: per-call no-op cost x call count < 1% of wall.

    Counts how many records a telemetry'd standard tune run emits, times
    the disabled fast path directly, and bounds the total disabled-path
    overhead the instrumentation adds to the plain run.
    """
    with telemetry.session() as tel:
        wall = _tune_once()
        calls = tel.ring.total_written

    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        tele.event("bench.noop", value=1)
    per_call = (time.perf_counter() - start) / n

    overhead = per_call * calls
    assert calls > 100  # the run is actually instrumented
    assert overhead < 0.01 * wall, (
        f"disabled path: {per_call * 1e9:.0f}ns x {calls} calls = "
        f"{overhead * 1e3:.3f}ms vs {wall:.3f}s run"
    )


def test_rollup_100k_events_under_budget(tmp_path):
    """Aggregation throughput: 100k logged events ingest within budget.

    `repro top` must catch up on a large backlog (a long fleet run it
    was not watching from the start) fast enough to feel instant.  The
    budget is deliberately loose for noisy CI runners; locally this
    runs an order of magnitude faster.
    """
    import json

    from repro.telemetry.aggregate import LogAggregator, Rollup

    n = 100_000
    lines = [json.dumps({"kind": "meta", "version": 1, "wall_start": 0.0,
                         "pid": 1})]
    for i in range(n):
        lines.append(json.dumps({
            "kind": "event", "name": f"engine.request.{i % 8}",
            "ts": i * 0.001, "parent": 0,
            "fields": {"queue_wait": (i % 50) * 0.01, "ok": True},
        }))
    (tmp_path / "worker-bench.jsonl").write_text("\n".join(lines) + "\n")

    aggregator = LogAggregator(tmp_path)
    rollup = Rollup(window=3600.0, max_samples=4096)
    start = time.perf_counter()
    rollup.extend(aggregator.poll())
    elapsed = time.perf_counter() - start

    assert rollup.total == n
    assert elapsed < 10.0, f"100k-event ingest took {elapsed:.2f}s"
    print(f"\n100k events ingested in {elapsed:.3f}s "
          f"({n / elapsed / 1e3:.0f}k records/s)")


def test_dashboard_refresh_overhead_below_one_percent(tmp_path):
    """Arithmetic bound: watching a fleet costs <1% of its wall clock.

    `repro top` polls at 1 Hz, so its worst-case tax on the machine is
    (per-snapshot cost) x (1 snapshot per second of run).  Measure one
    real job's wall time and the dashboard's steady-state snapshot cost
    against the store that run left behind; the bound holds when a
    snapshot costs under 10ms.
    """
    from repro.service import JobService, TuneRequest
    from repro.telemetry.dashboard import FleetDashboard
    from repro.store import RunStore

    store_root = tmp_path / "store"
    service = JobService(store_root, use_cache=False, worker_id="bench")
    service.submit(TuneRequest(program="TS", size=10.0, n_train=40,
                               n_trees=15, generations=3, seed=2))
    start = time.perf_counter()
    service.work(poll_interval=0.01, max_jobs=1, idle_polls=2)
    wall = time.perf_counter() - start

    dashboard = FleetDashboard(RunStore(store_root))
    dashboard.snapshot()  # first call pays the backlog; steady state next
    n = 50
    start = time.perf_counter()
    for _ in range(n):
        dashboard.snapshot()
    per_snapshot = (time.perf_counter() - start) / n

    overhead = per_snapshot * max(1.0, wall)  # 1 Hz refresh for the run
    assert overhead < 0.01 * max(1.0, wall), (
        f"snapshot {per_snapshot * 1e3:.2f}ms x 1 Hz over a {wall:.2f}s "
        f"run = {overhead / max(1.0, wall):.2%} overhead"
    )
    print(f"\nsnapshot {per_snapshot * 1e3:.2f}ms; "
          f"{per_snapshot / max(1.0, wall):.3%} of a {wall:.2f}s run at 1 Hz")
