"""Telemetry overhead: the disabled path must be effectively free.

The instrumentation contract (ISSUE: "provably negligible") is that a
``tele.event(...)``/``tele.span(...)`` call site with telemetry off
costs one module-global load and a ``None`` check.  Two measurements
back that up:

* micro: the per-call cost of the disabled fast path (ns-scale);
* macro: a standard FAST tune run with telemetry off vs on, plus an
  arithmetic bound — (disabled per-call cost) x (records a telemetry'd
  run emits) must stay under 1% of the run's wall time, which holds by
  orders of magnitude and, unlike a wall-clock A/B on a noisy CI
  runner, cannot flake.
"""

import time

from repro import telemetry
from repro.core.tuner import DacTuner
from repro.engine import InProcessBackend
from repro.telemetry import events as tele
from repro.telemetry.metrics import get_registry
from repro.workloads import get_workload

#: The "standard tune run" both overhead benchmarks execute.
TUNE = dict(n_train=60, n_trees=30, seed=0)
TUNE_SIZE, TUNE_GENERATIONS = 10.0, 5


def _tune_once() -> float:
    """One full pipeline run (collect, fit, search); returns wall time."""
    start = time.perf_counter()
    tuner = DacTuner(get_workload("TS"), engine=InProcessBackend(), **TUNE)
    tuner.collect()
    tuner.fit()
    tuner.tune(TUNE_SIZE, generations=TUNE_GENERATIONS)
    return time.perf_counter() - start


def test_event_call_disabled(benchmark):
    """The instrumented hot path with telemetry off (the default)."""
    assert not tele.enabled()
    benchmark(tele.event, "bench.noop", value=1)


def test_event_call_enabled(benchmark):
    """The same call with telemetry on, recording to the ring buffer."""
    with telemetry.session():
        benchmark(tele.event, "bench.noop", value=1)


def test_span_disabled(benchmark):
    assert not tele.enabled()

    def enter_exit():
        with tele.span("bench.span", value=1):
            pass

    benchmark(enter_exit)


def test_counter_disabled(benchmark):
    """Metrics through the null registry (shared no-op instrument)."""
    registry = get_registry()
    assert not registry.enabled
    counter = registry.counter("bench.noop")
    benchmark(counter.inc)


def test_tune_run_telemetry_off(benchmark, once):
    """Baseline: the standard tune run with telemetry off."""
    assert benchmark.pedantic(_tune_once, **once) > 0


def test_tune_run_telemetry_on(benchmark, once):
    """The same run with the full pipeline on (ring + live registry)."""
    def tune_with_telemetry():
        with telemetry.session():
            return _tune_once()

    assert benchmark.pedantic(tune_with_telemetry, **once) > 0


def test_disabled_overhead_below_one_percent():
    """Arithmetic bound: per-call no-op cost x call count < 1% of wall.

    Counts how many records a telemetry'd standard tune run emits, times
    the disabled fast path directly, and bounds the total disabled-path
    overhead the instrumentation adds to the plain run.
    """
    with telemetry.session() as tel:
        wall = _tune_once()
        calls = tel.ring.total_written

    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        tele.event("bench.noop", value=1)
    per_call = (time.perf_counter() - start) / n

    overhead = per_call * calls
    assert calls > 100  # the run is actually instrumented
    assert overhead < 0.01 * wall, (
        f"disabled path: {per_call * 1e9:.0f}ns x {calls} calls = "
        f"{overhead * 1e3:.3f}ms vs {wall:.3f}s run"
    )
