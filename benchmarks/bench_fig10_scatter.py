"""Figure 10 bench: predicted-vs-measured scatter for PR and TS.

Paper: 200 random configurations hug the bisector with few outliers.
Reproduced claim: strong log-space correlation and a majority of points
within 30% of the bisector.
"""

from conftest import report

from repro.experiments import fig10_scatter
from repro.experiments.common import FAST


def test_fig10_scatter(benchmark, once):
    result = benchmark.pedantic(
        fig10_scatter.run, args=(FAST,), kwargs={"n_points": 150}, **once
    )
    report(result.render())
    for series in result.series.values():
        assert series.log_correlation() > 0.6
