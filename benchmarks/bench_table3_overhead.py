"""Table 3 bench: DAC's one-time costs per program.

Paper: collecting 53-92 cluster-hours dominates; modeling ~9-12 s;
searching 7-10 min.  Reproduced claim: collecting (simulated cluster
hours) dwarfs the modeling+searching wall-clock costs.
"""

from conftest import report

from repro.experiments import table3_overhead
from repro.experiments.common import FAST


def test_table3_overhead(benchmark, once):
    result = benchmark.pedantic(table3_overhead.run, args=(FAST,), **once)
    report(result.render())
    assert result.collecting_dominates
