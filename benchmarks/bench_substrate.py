"""Micro-benchmarks of the substrates: simulator, models, GA throughput.

These are conventional pytest-benchmark measurements (multiple rounds)
quantifying why model-driven search is feasible at all — Section 5.5's
point that one simulated/predicted evaluation costs milliseconds while
a real execution costs minutes.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.common.rng import derive_rng
from repro.core.collecting import Collector
from repro.core.ga import GeneticAlgorithm
from repro.engine import (
    CachedBackend,
    ExecRequest,
    InProcessBackend,
    ProcessPoolBackend,
)
from repro.models import GradientBoostedTrees, RandomForest
from repro.sparksim.confspace import SPARK_CONF_SPACE
from repro.sparksim.simulator import SparkSimulator
from repro.workloads import get_workload

from conftest import report


def test_simulator_single_run(benchmark):
    """One simulated TeraSort execution (the collecting component's unit)."""
    simulator = SparkSimulator()
    job = get_workload("TS").job(30.0)
    config = SPARK_CONF_SPACE.default()
    result = benchmark(simulator.run, job, config)
    assert result.seconds > 0


def test_simulator_random_config_run(benchmark):
    simulator = SparkSimulator()
    job = get_workload("KM").job(224.0)
    rng = derive_rng("bench-sim")
    configs = [SPARK_CONF_SPACE.random(rng) for _ in range(64)]
    it = iter(range(10**9))

    def run_one():
        return simulator.run(job, configs[next(it) % len(configs)])

    assert benchmark(run_one).seconds > 0


def test_gbt_fit_500x42(benchmark):
    """Fitting one HM first-order component at FAST scale."""
    rng = np.random.default_rng(0)
    X = rng.random((500, 42))
    y = rng.random(500)

    def fit():
        return GradientBoostedTrees(n_trees=100, learning_rate=0.1).fit(X, y)

    model = benchmark(fit)
    assert model.n_trees_fitted <= 100


def test_model_predict_throughput(benchmark):
    """Model queries must be >> faster than real runs (Section 5.5)."""
    rng = np.random.default_rng(1)
    X = rng.random((500, 42))
    y = rng.random(500)
    model = GradientBoostedTrees(n_trees=100, learning_rate=0.1).fit(X, y)
    batch = rng.random((1000, 42))
    pred = benchmark(model.predict, batch)
    assert pred.shape == (1000,)


def test_rf_fit_500x41(benchmark):
    rng = np.random.default_rng(2)
    X = rng.random((500, 41))
    y = rng.random(500)
    model = benchmark(lambda: RandomForest(n_trees=40).fit(X, y))
    assert len(model._trees) == 40


@pytest.fixture(scope="module")
def _pool4():
    """One persistent 4-worker pool shared across benchmark rounds, so
    the measurement is batch throughput, not pool start-up."""
    with ProcessPoolBackend(jobs=4) as pool:
        yield pool


def test_collect_200_serial(benchmark, once):
    """200-example TeraSort collection through the in-process backend."""
    def collect():
        collector = Collector(get_workload("TS"), seed=11, engine=InProcessBackend())
        return collector.collect(200)

    assert len(benchmark.pedantic(collect, **once)) == 200


def test_collect_200_processpool_jobs4(benchmark, once, _pool4):
    """Same 200-example collection fanned out with ``--jobs 4``.

    Identical results to the serial run (the simulator seeds every draw
    from the request triple); on a multi-core runner the speedup is the
    collecting component's batch parallelism.
    """
    def collect():
        collector = Collector(get_workload("TS"), seed=11, engine=_pool4)
        return collector.collect(200)

    assert len(benchmark.pedantic(collect, **once)) == 200


def test_engine_queue_wait_and_cache_latency(benchmark, once):
    """Engine observability: queue-wait and cache-lookup latency metrics.

    Submits a 64-request batch through a bare in-process engine (whose
    sequential queue wait is the time spent on the requests ahead), then
    the same batch twice through a cached engine — first pass misses,
    second hits — under a live metrics registry, and prints the latency
    distributions (``engine.queue_wait_seconds``,
    ``engine.cache.lookup_seconds``, ``engine.wall_seconds``) the
    telemetry subsystem collected.
    """
    job = get_workload("TS").job(30.0)
    rng = derive_rng("bench-engine-tele")
    requests = [
        ExecRequest(job=job, config=SPARK_CONF_SPACE.random(rng))
        for _ in range(64)
    ]

    def run_batches():
        with telemetry.session():
            with InProcessBackend() as engine:
                engine.submit(requests)
            with CachedBackend(InProcessBackend()) as cached:
                cached.submit(requests)
                cached.submit(requests)
            return telemetry.get_registry().snapshot()

    snapshot = benchmark.pedantic(run_batches, **once)
    assert snapshot.counters["engine.cache.hits"] == 64
    assert snapshot.counters["engine.cache.misses"] == 64
    assert snapshot.histograms["engine.queue_wait_seconds"].count == 64
    assert snapshot.histograms["engine.cache.lookup_seconds{result=hit}"].count == 64
    report(snapshot.render())


def test_ga_generation_throughput(benchmark):
    """One full GA search over the 41-dim space with a cheap objective."""
    ga = GeneticAlgorithm(SPARK_CONF_SPACE, population_size=60)
    weights = np.linspace(0.1, 1.0, 41)

    def search():
        return ga.minimize(
            lambda pop: pop @ weights,
            derive_rng("bench-ga"),
            generations=50,
            patience=None,
        )

    result = benchmark(search)
    assert result.best_fitness >= 0.0
