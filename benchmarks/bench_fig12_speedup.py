"""Figure 12 bench: DAC speedups over default / RFHOC / expert.

Paper: 30.4x average (up to 89x) over defaults, 15.4x geomean; 1.5x
geomean over RFHOC; 2.3x geomean over expert.  Reproduced claims: DAC
beats the default on all 30 program-input pairs; aggregate speedups
land in the paper's regime (who-wins ordering preserved).
"""

from conftest import report

from repro.experiments import fig12_speedup
from repro.experiments.common import FAST


def test_fig12_speedup(benchmark, once):
    result = benchmark.pedantic(fig12_speedup.run, args=(FAST,), **once)
    report(result.render())
    assert all(cell.vs_default > 1.0 for cell in result.cells)
    assert result.mean_speedup("default") > 5.0
    assert result.geomean_speedup("expert") > 1.0
