"""Checkpoint overhead and the zero-copy load path.

Two store contracts are gated here:

* checkpoint overhead (ISSUE: "under a few percent") — routing a tune
  through ``JobService``, which persists a digest-checked artifact
  plus the job record after every collect batch, every HM order, and
  every GA generation, costs only a small constant per checkpoint on
  top of the plain in-process pipeline.  Measured two ways: a macro
  wall-clock A/B, and the service's own
  ``JobRecord.checkpoint_wall_seconds`` accounting, which must stay
  under 5% of the job's wall time (the arithmetic bound cannot flake
  on a noisy runner).

* the zero-copy read path — ``get_model(key, mode="mmap")`` on a
  500-tree columnar-blob checkpoint must load much faster than
  unpickling the same model (it reads only the header; node tables
  stay untouched until predict gathers from them), must not
  materialize the payload into the reader's heap, and N concurrent
  readers must share one page-cache copy (O(1) resident memory per
  extra reader, measured by PSS).  The measured numbers land in
  ``BENCH_store.json``.
"""

import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.tuner import DacTuner
from repro.engine import InProcessBackend
from repro.models.hierarchical import HierarchicalModel
from repro.service import JobService, TuneRequest
from repro.store import RunStore
from repro.workloads import get_workload

#: The "standard tune run": large enough that per-checkpoint constants
#: amortize the way they do in real use, small enough for CI.
TUNE = dict(n_train=200, n_trees=120, seed=0)
TUNE_SIZE, TUNE_GENERATIONS = 10.0, 10

REQUEST = TuneRequest(
    program="TS",
    size=TUNE_SIZE,
    n_train=TUNE["n_train"],
    n_trees=TUNE["n_trees"],
    generations=TUNE_GENERATIONS,
    patience=None,
    seed=TUNE["seed"],
)


def _tune_direct() -> float:
    """The plain pipeline: no store, no checkpoints; returns wall time."""
    start = time.perf_counter()
    tuner = DacTuner(get_workload("TS"), engine=InProcessBackend(), **TUNE)
    tuner.collect()
    tuner.fit()
    tuner.tune(TUNE_SIZE, generations=TUNE_GENERATIONS, patience=None)
    return time.perf_counter() - start


def _tune_via_service(tmp_path):
    """The same run as a durable job; returns the finished record."""
    service = JobService(tmp_path / "store", use_cache=False)
    record = service.submit(REQUEST)
    return service.resume(record.job_id)


def test_tune_direct(benchmark, once):
    """Baseline: the standard tune run with no store."""
    assert benchmark.pedantic(_tune_direct, **once) > 0


def test_tune_with_store(benchmark, once, tmp_path):
    """The same run checkpointing every batch/order/generation."""
    record = benchmark.pedantic(_tune_via_service, args=(tmp_path,), **once)
    assert record.state == "done"


def test_checkpoint_overhead_below_a_few_percent(tmp_path):
    """Arithmetic bound: measured persist time < 5% of the job's wall.

    The runner accumulates the wall spent inside every checkpoint
    (artifact write + record save) into the job record, so the bound
    uses the service's own accounting rather than a flaky A/B.
    """
    start = time.perf_counter()
    record = _tune_via_service(tmp_path)
    wall = time.perf_counter() - start

    assert record.state == "done"
    spent = record.checkpoint_wall_seconds
    checkpoints = (
        record.progress["collect"]["batches_done"]
        + record.progress["fit"]["orders_done"]
        + record.progress["search"]["generation"]
    )
    assert checkpoints > 10  # the run actually checkpointed throughout
    assert spent < 0.05 * wall, (
        f"checkpointing: {spent * 1e3:.1f}ms across {checkpoints}+ "
        f"checkpoints vs {wall:.3f}s job wall"
    )


# ----------------------------------------------------------------------
# Zero-copy load path: mmap vs unpickle on a 500-tree checkpoint
# ----------------------------------------------------------------------
#: A paper-scale checkpoint: 500 perfect-binary depth-10 trees over the
#: 42-column feature matrix (~25 MB of node tables + bin edges).
FOREST_TREES = 500
FOREST_DEPTH = 10
FOREST_FEATURES = 42
FOREST_BINS = 256

#: CI gates (locally mmap loads are 100x+ faster and resolve a few
#: hundred KB; the floors only catch a return to eager materialization).
LOAD_SPEEDUP_FLOOR = 5.0
LAZY_RSS_DIVISOR = 4.0
SHARED_PSS_CEILING = 2.0  # x artifact size, for 3 concurrent readers

STORE_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _synthetic_checkpoint() -> HierarchicalModel:
    """A frozen single-component HM with a large synthetic node table.

    Built straight from sections: fitting 500 deep trees for real takes
    minutes, but the load path only cares about array sizes and a valid
    traversal structure (heap-layout perfect trees, leaves at depth 10).
    """
    gen = np.random.default_rng(0)
    n_nodes = 2 ** (FOREST_DEPTH + 1) - 1
    n_internal = 2 ** FOREST_DEPTH - 1
    total = FOREST_TREES * n_nodes
    idx = np.tile(np.arange(n_nodes), FOREST_TREES)
    internal = idx < n_internal
    offsets = np.repeat(
        np.arange(FOREST_TREES, dtype=np.int64) * n_nodes, n_nodes
    )
    feature = np.where(
        internal, gen.integers(0, FOREST_FEATURES, total), -1
    ).astype(np.int32)
    threshold = np.where(
        internal, gen.integers(0, FOREST_BINS - 2, total), 0
    ).astype(np.int32)
    left = np.where(internal, offsets + 2 * idx + 1, -1)
    right = np.where(internal, offsets + 2 * idx + 2, -1)
    children = np.column_stack([left, right]).reshape(-1).astype(np.int32)
    edges = np.tile(np.linspace(0.0, 1.0, FOREST_BINS - 1), FOREST_FEATURES)
    sections = {
        "weights": np.asarray([1.0]),
        "holdout": np.asarray([0.25]),
        "c0.feature": feature,
        "c0.threshold": threshold,
        "c0.children": children,
        "c0.value": gen.normal(size=total) * 0.01,
        "c0.roots": (np.arange(FOREST_TREES) * n_nodes).astype(np.int32),
        "c0.edges": edges,
        "c0.edges_off": np.cumsum(
            [0] + [FOREST_BINS - 1] * FOREST_FEATURES
        ).astype(np.int64),
        "c0.val_errors": np.full(FOREST_TREES, 0.1),
    }
    component_meta = {
        "n_trees": FOREST_TREES,
        "learning_rate": 0.05,
        "tree_complexity": FOREST_DEPTH,
        "subsample": 0.5,
        "target_accuracy": None,
        "validation_fraction": 0.2,
        "patience": FOREST_TREES,
        "convergence_tol": 1e-8,
        "min_samples_leaf": 1,
        "random_state": 0,
        "base": 0.0,
        "stopped_reason": "all trees fitted",
        "n_trees_fitted": FOREST_TREES,
        "max_bins": FOREST_BINS,
    }
    meta = {
        "n_trees": FOREST_TREES,
        "learning_rate": 0.05,
        "tree_complexity": FOREST_DEPTH,
        "subsample": 0.5,
        "target_accuracy": 0.9,
        "max_order": 1,
        "validation_fraction": 0.2,
        "patience": FOREST_TREES,
        "random_state": 0,
        "order": 1,
        "components": [component_meta],
    }
    return HierarchicalModel.from_sections(sections, meta)


def _vm_rss_kb() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found")


def _pss_kb(pid: int):
    """Proportional set size of ``pid`` in KB, or None if unsupported."""
    try:
        with open(f"/proc/{pid}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _load_probe(root, key, mode, conn):
    """Child body: time get_model and report the load-only RSS delta."""
    store = RunStore(root)
    rss_before = _vm_rss_kb()
    start = time.perf_counter()
    model = store.get_model(key, mode=mode)
    load_seconds = time.perf_counter() - start
    conn.send(
        {
            "ok": model is not None,
            "load_seconds": load_seconds,
            "rss_delta_kb": _vm_rss_kb() - rss_before,
        }
    )
    conn.close()


def _reader_probe(root, key, X, release, conn):
    """Child body: mmap-load, touch the node tables via predict, then
    hold the mapping alive while the parent samples our PSS."""
    store = RunStore(root)
    pss_before = _pss_kb(os.getpid())
    model = store.get_model(key, mode="mmap")
    prediction = model.predict(X)
    conn.send({"pss_before_kb": pss_before, "checksum": float(prediction.sum())})
    release.wait(timeout=120)
    conn.close()


@pytest.fixture(scope="module")
def zero_copy():
    """Measure the mmap and pickle load paths; emit ``BENCH_store.json``."""
    if not hasattr(os, "fork"):
        pytest.skip("load probes need fork")
    ctx = multiprocessing.get_context("fork")
    workdir = tempfile.mkdtemp(prefix="bench-store-")
    store = RunStore(Path(workdir) / "store")
    model = _synthetic_checkpoint()
    store.put_model("model/blob", model)
    assert store.entry("model/blob")["codec"] == "blob1"
    store.put_object("model/pickle", model, kind="model")
    blob_path = store._object_path(str(store.entry("model/blob")["digest"]))
    blob_kb = blob_path.stat().st_size // 1024

    # the bench is moot unless all three paths predict identically
    X = np.random.default_rng(1).random((64, FOREST_FEATURES))
    expected = model.predict(X)
    for key, mode in (("model/blob", "mmap"), ("model/pickle", "copy")):
        loaded = store.get_model(key, mode=mode)
        assert loaded.predict(X).tobytes() == expected.tobytes()

    def probe(key, mode, repeats=3):
        samples = []
        for _ in range(repeats):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_load_probe, args=(store.root, key, mode, child)
            )
            proc.start()
            child.close()
            sample = parent.recv()
            proc.join(timeout=60)
            assert sample["ok"]
            samples.append(sample)
        return {
            "load_seconds": min(s["load_seconds"] for s in samples),
            "rss_delta_kb": int(
                np.median([s["rss_delta_kb"] for s in samples])
            ),
        }

    results = {
        "forest": {
            "trees": FOREST_TREES,
            "depth": FOREST_DEPTH,
            "artifact_kb": blob_kb,
        },
        "pickle": probe("model/pickle", "copy"),
        "mmap": probe("model/blob", "mmap"),
    }
    results["load_speedup"] = round(
        results["pickle"]["load_seconds"] / results["mmap"]["load_seconds"], 2
    )

    # three concurrent readers, each touching the whole node table:
    # PSS counts each shared page at 1/n-readers, so the summed deltas
    # stay around one artifact's worth if (and only if) the mapping is
    # actually shared.
    release = ctx.Event()
    readers = []
    for _ in range(3):
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_reader_probe,
            args=(store.root, "model/blob", X, release, child),
        )
        proc.start()
        child.close()
        readers.append((proc, parent))
    deltas = []
    for proc, parent in readers:
        sample = parent.recv()  # sent after predict: pages are resident
        if sample["pss_before_kb"] is None:
            deltas = None
            break
        pss_now = _pss_kb(proc.pid)
        if pss_now is None:
            deltas = None
            break
        deltas.append(pss_now - sample["pss_before_kb"])
    release.set()
    for proc, _ in readers:
        proc.join(timeout=60)
    results["shared_readers"] = (
        None
        if deltas is None
        else {"readers": 3, "total_pss_delta_kb": int(sum(deltas))}
    )

    STORE_RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"\n500-tree checkpoint ({blob_kb} KB): "
        f"unpickle {results['pickle']['load_seconds'] * 1e3:.1f}ms "
        f"(+{results['pickle']['rss_delta_kb']} KB RSS) vs "
        f"mmap {results['mmap']['load_seconds'] * 1e3:.1f}ms "
        f"(+{results['mmap']['rss_delta_kb']} KB RSS), "
        f"{results['load_speedup']}x"
    )
    return results


def test_mmap_load_speedup_floor(zero_copy):
    """Loading via mmap must beat unpickling by >= 5x at 500 trees."""
    assert zero_copy["load_speedup"] >= LOAD_SPEEDUP_FLOOR, (
        f"mmap load only {zero_copy['load_speedup']}x faster than "
        f"unpickle (floor {LOAD_SPEEDUP_FLOOR}x) — the zero-copy path "
        "is materializing the payload"
    )


def test_mmap_load_is_lazy(zero_copy):
    """Loading must not pull the node tables into the reader's heap."""
    pickle_kb = zero_copy["pickle"]["rss_delta_kb"]
    mmap_kb = zero_copy["mmap"]["rss_delta_kb"]
    assert mmap_kb < pickle_kb / LAZY_RSS_DIVISOR, (
        f"mmap load grew RSS by {mmap_kb} KB vs {pickle_kb} KB for "
        "unpickle — sections are being copied at load time"
    )


def test_concurrent_readers_share_one_copy(zero_copy):
    """3 readers with every page touched cost ~1 resident copy, not 3."""
    shared = zero_copy["shared_readers"]
    if shared is None:
        pytest.skip("kernel lacks /proc/<pid>/smaps_rollup")
    ceiling = SHARED_PSS_CEILING * zero_copy["forest"]["artifact_kb"]
    assert shared["total_pss_delta_kb"] < ceiling, (
        f"3 mmap readers cost {shared['total_pss_delta_kb']} KB PSS "
        f"total (ceiling {ceiling:.0f} KB) — pages are not shared"
    )
