"""Checkpoint overhead: the durable job path must stay near-free.

The run-store contract (ISSUE: "checkpoint overhead under a few
percent") is that routing a tune through ``JobService`` — which
persists a digest-checked artifact plus the job record after every
collect batch, every HM order, and every GA generation — costs only a
small constant per checkpoint on top of the plain in-process pipeline.
Two measurements back that up:

* macro: the standard tune run direct vs through the service
  (wall-clock A/B, one round each);
* arithmetic bound: the service times every persist into
  ``JobRecord.checkpoint_wall_seconds``; that measured total must stay
  under 5% of the job's wall time.  Unlike the A/B on a noisy CI
  runner, the bound cannot flake.

Per-checkpoint cost is a small constant (sub-millisecond artifact +
record writes), so the fraction falls as the job grows: ~2.5% at the
scale below, well under 1% at paper scale (600 examples, 250 trees,
100 generations), and dominated by substrate time either way.
"""

import time

from repro.core.tuner import DacTuner
from repro.engine import InProcessBackend
from repro.service import JobService, TuneRequest
from repro.workloads import get_workload

#: The "standard tune run": large enough that per-checkpoint constants
#: amortize the way they do in real use, small enough for CI.
TUNE = dict(n_train=200, n_trees=120, seed=0)
TUNE_SIZE, TUNE_GENERATIONS = 10.0, 10

REQUEST = TuneRequest(
    program="TS",
    size=TUNE_SIZE,
    n_train=TUNE["n_train"],
    n_trees=TUNE["n_trees"],
    generations=TUNE_GENERATIONS,
    patience=None,
    seed=TUNE["seed"],
)


def _tune_direct() -> float:
    """The plain pipeline: no store, no checkpoints; returns wall time."""
    start = time.perf_counter()
    tuner = DacTuner(get_workload("TS"), engine=InProcessBackend(), **TUNE)
    tuner.collect()
    tuner.fit()
    tuner.tune(TUNE_SIZE, generations=TUNE_GENERATIONS, patience=None)
    return time.perf_counter() - start


def _tune_via_service(tmp_path):
    """The same run as a durable job; returns the finished record."""
    service = JobService(tmp_path / "store", use_cache=False)
    record = service.submit(REQUEST)
    return service.resume(record.job_id)


def test_tune_direct(benchmark, once):
    """Baseline: the standard tune run with no store."""
    assert benchmark.pedantic(_tune_direct, **once) > 0


def test_tune_with_store(benchmark, once, tmp_path):
    """The same run checkpointing every batch/order/generation."""
    record = benchmark.pedantic(_tune_via_service, args=(tmp_path,), **once)
    assert record.state == "done"


def test_checkpoint_overhead_below_a_few_percent(tmp_path):
    """Arithmetic bound: measured persist time < 5% of the job's wall.

    The runner accumulates the wall spent inside every checkpoint
    (artifact write + record save) into the job record, so the bound
    uses the service's own accounting rather than a flaky A/B.
    """
    start = time.perf_counter()
    record = _tune_via_service(tmp_path)
    wall = time.perf_counter() - start

    assert record.state == "done"
    spent = record.checkpoint_wall_seconds
    checkpoints = (
        record.progress["collect"]["batches_done"]
        + record.progress["fit"]["orders_done"]
        + record.progress["search"]["generation"]
    )
    assert checkpoints > 10  # the run actually checkpointed throughout
    assert spent < 0.05 * wall, (
        f"checkpointing: {spent * 1e3:.1f}ms across {checkpoints}+ "
        f"checkpoints vs {wall:.3f}s job wall"
    )
