"""Figure 13 bench: KMeans per-stage times and GC by configuration.

Paper: StageC (iterative aggregate/collect) dominates; DAC and RFHOC
both crush the default, with DAC pulling ahead at large inputs; DAC's
GC time is far below default's.  Reproduced claims: same dominance and
GC ordering.
"""

from conftest import report

from repro.experiments import fig13_kmeans_stages
from repro.experiments.common import FAST


def test_fig13_kmeans_stages(benchmark, once):
    result = benchmark.pedantic(fig13_kmeans_stages.run, args=(FAST,), **once)
    report(result.render())
    largest = result.sizes[-1]
    assert result.dominant_stage("default", largest) == "stageC-iterate"
    for size in result.sizes:
        assert result.total("DAC", size) < result.total("default", size)
        assert result.gc_seconds[("DAC", size)] < result.gc_seconds[("default", size)]
