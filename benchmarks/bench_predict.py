"""Batch predict throughput: flat node tables vs the Python node walk.

The GA inner loop evaluates a whole population (>= 60 gene vectors)
against a boosted ensemble (>= 600 trees) every generation, so batch
predict is the hot path of the search phase.  The flat-inference layer
(:mod:`repro.models.flat`) lowers every fitted tree into a
structure-of-arrays table and traverses all rows with vectorized
gathers; this benchmark measures both paths at GA scale, asserts the
regression floor, and writes the numbers to ``BENCH_predict.json``.

The floor is deliberately below the locally-measured speedup (well
over 10x): CI runners are noisy, and the point of the gate is to catch
an accidental return to per-node Python iteration, not 20% wobble.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.common.rng import derive_rng
from repro.core.ga import GeneticAlgorithm, MemoizedFitness
from repro.models.boosting import GradientBoostedTrees
from repro.sparksim.confspace import spark_configuration_space

#: GA-phase scale from the issue's acceptance bar: nt >= 600 trees,
#: population >= 60 rows per predict call.
N_TREES = 600
POPULATION = 60
N_FEATURES = 10

#: CI regression gate (local speedups are far higher; see module doc).
SPEEDUP_FLOOR = 8.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_predict.json"


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    X = rng.random((800, N_FEATURES))
    y = rng.normal(size=800)
    fitted = GradientBoostedTrees(
        n_trees=N_TREES, patience=N_TREES, random_state=0
    ).fit(X, y)
    assert fitted.n_trees_fitted >= N_TREES
    return fitted


def _throughput(fn, X, min_seconds: float = 0.4, max_repeats: int = 400):
    """(rows/second, calls) for ``fn(X)``, timed over >= min_seconds."""
    fn(X)  # warm up: binning cache, flat-table build
    repeats = 0
    start = time.perf_counter()
    while True:
        fn(X)
        repeats += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds or repeats >= max_repeats:
            return len(X) * repeats / elapsed, repeats


def test_batch_predict_speedup(model):
    rng = np.random.default_rng(1)
    results = {"n_trees": N_TREES, "population": POPULATION, "grid": []}

    for population in (POPULATION, 256, 1024):
        X = rng.random((population, N_FEATURES))
        flat_rps, _ = _throughput(model.predict, X)
        walk_rps, _ = _throughput(model.predict_walk, X, min_seconds=0.8,
                                  max_repeats=20)
        speedup = flat_rps / walk_rps
        results["grid"].append(
            {
                "population": population,
                "walk_rows_per_s": round(walk_rps, 1),
                "flat_rows_per_s": round(flat_rps, 1),
                "speedup": round(speedup, 2),
            }
        )

    gate = results["grid"][0]
    results["speedup_at_gate"] = gate["speedup"]
    results["speedup_floor"] = SPEEDUP_FLOOR

    # -- GA search throughput with the memoized model-backed fitness.
    space = spark_configuration_space()
    binner_rng = np.random.default_rng(2)
    projection = binner_rng.random((len(space), N_FEATURES))

    def fitness(population_matrix):
        return model.predict(np.asarray(population_matrix) @ projection)

    memo = MemoizedFitness(fitness)
    ga = GeneticAlgorithm(space, population_size=POPULATION)
    generations = 25
    start = time.perf_counter()
    ga.minimize(memo, derive_rng("bench-predict"), generations=generations,
                patience=None)
    ga_seconds = time.perf_counter() - start
    results["ga"] = {
        "population": POPULATION,
        "generations": generations,
        "generations_per_s": round(generations / ga_seconds, 2),
        "fitness_cache_hits": memo.hits,
        "fitness_cache_misses": memo.misses,
    }

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    rows = "\n".join(
        f"  pop={entry['population']:>5}  walk {entry['walk_rows_per_s']:>10.1f} rows/s"
        f"  flat {entry['flat_rows_per_s']:>12.1f} rows/s"
        f"  speedup {entry['speedup']:>7.2f}x"
        for entry in results["grid"]
    )
    print(
        f"\nbatch predict, {N_TREES} trees (floor {SPEEDUP_FLOOR}x at "
        f"pop={POPULATION}):\n{rows}\n"
        f"  GA: {results['ga']['generations_per_s']} generations/s, "
        f"{memo.hits} fitness cache hits\n"
    )

    assert gate["speedup"] >= SPEEDUP_FLOOR, (
        f"flat predict only {gate['speedup']:.1f}x over node walk at "
        f"population {POPULATION} (floor {SPEEDUP_FLOOR}x) — "
        "regression on the vectorized inference path"
    )
    assert memo.hits > 0  # elites re-served from the fitness memo


def test_flat_equals_walk_at_bench_scale(model):
    """The two timed paths must agree bitwise, or the bench is moot."""
    X = np.random.default_rng(3).random((POPULATION, N_FEATURES))
    assert model.predict(X).tobytes() == model.predict_walk(X).tobytes()
