"""Figure 8 bench: first-order HM error vs (nt, lr, tc) on PageRank.

Paper: tc=1 never beats ~10% error; tc=5 reaches 7.6%, with larger
learning rates converging in fewer trees (they choose tc=5, lr=0.05,
nt=3600).  Reproduced claim: the richest tree complexity achieves a
lower error floor than stumps.
"""

from conftest import report

from repro.experiments import fig08_hm_params
from repro.experiments.common import FAST


def test_fig08_hm_params(benchmark, once):
    result = benchmark.pedantic(fig08_hm_params.run, args=(FAST,), **once)
    report(result.render())
    assert result.complex_trees_win
