"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate (a) the datasize feature
itself, (b) the GA over simpler searchers at equal budget, and (c) HM's
recursion depth.
"""

from conftest import report

from repro.experiments import ablation_datasize, ablation_hm_order, ablation_search
from repro.experiments.common import FAST


def test_ablation_datasize_awareness(benchmark, once):
    result = benchmark.pedantic(
        ablation_datasize.run, args=(FAST,), kwargs={"program": "TS"}, **once
    )
    report(result.render())
    # The mechanism must hold at any scale: the datasize feature makes the
    # model strictly more accurate.  The end-to-end advantage of per-size
    # search needs an accurate model to materialize (at FAST scale the
    # per-size GA can exploit residual model error), so it is only loosely
    # bounded here; see EXPERIMENTS.md for the discussion.
    assert result.awareness_improves_model
    assert result.geomean_advantage > 0.6


def test_ablation_search_strategies(benchmark, once):
    result = benchmark.pedantic(
        ablation_search.run, args=(FAST,), kwargs={"program": "KM"}, **once
    )
    report(result.render())
    assert result.ga_wins_predicted


def test_ablation_hm_order(benchmark, once):
    result = benchmark.pedantic(
        ablation_hm_order.run, args=(FAST,), kwargs={"program": "PR"}, **once
    )
    report(result.render())
    assert result.deeper_never_worse
