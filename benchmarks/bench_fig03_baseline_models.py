"""Figure 3 bench: prediction errors of the RS/ANN/SVM/RF baselines.

Paper averages: RS 23%, ANN 27%, SVM 14%, RF 18% — all too inaccurate
to drive search.  Reproduced claim: every baseline leaves double-digit
average error on the 41-param + datasize problem.
"""

from conftest import report

from repro.experiments import fig03_baseline_errors
from repro.experiments.common import FAST


def test_fig03_baseline_models(benchmark, once):
    result = benchmark.pedantic(fig03_baseline_errors.run, args=(FAST,), **once)
    report(fig03_baseline_errors.render(result))
    assert all(result.average(m) > 0.10 for m in result.models)
