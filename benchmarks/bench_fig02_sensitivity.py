"""Figure 2 bench: IMC vs ODC execution-time variance vs input size.

Paper: Spark-KM Tvar grows 2.6x (input doubles), Spark-PR 4.3x;
Hadoop-KM 0.97x, Hadoop-PR 1.76x.  Reproduced claim: every Spark growth
ratio exceeds the matching Hadoop ratio.
"""

from conftest import report

from repro.experiments import fig02_sensitivity
from repro.experiments.common import FAST


def test_fig02_sensitivity(benchmark, once):
    result = benchmark.pedantic(fig02_sensitivity.run, args=(FAST,), **once)
    report(result.render())
    assert result.imc_more_sensitive
