"""Figure 9 bench: HM vs the four baselines across all six programs.

Paper: HM averages 7.6% error vs RS 22%, ANN 30%, SVM 15%, RF 19%.
Reproduced claim: HM's average error beats every baseline's.
"""

from conftest import report

from repro.experiments import fig09_hm_accuracy
from repro.experiments.common import FAST


def test_fig09_hm_accuracy(benchmark, once):
    result = benchmark.pedantic(fig09_hm_accuracy.run, args=(FAST,), **once)
    report(fig09_hm_accuracy.render(result))
    assert fig09_hm_accuracy.hm_wins(result)
