"""Model-fit throughput: histogram kernel vs the per-feature reference.

Every collect→refit cycle re-fits hundreds of boosted trees per HM
component, and the reference split search loops over all 41 features in
Python per node.  The histogram kernel (:mod:`repro.models.histkernel`)
builds every feature's count/sum histograms in one flattened
``np.bincount`` and scores both children of a committed split per batch
— while growing the byte-identical tree.  This benchmark measures both
paths at the paper operating point (600 trees, 41 features, HM
per-order components), asserts the regression floor, verifies that the
kernel-fit and reference-fit tuning pipelines produce
``report_fingerprint``-identical reports, and writes the numbers to
``BENCH_fit.json``.

The floor is deliberately below the locally-measured speedup (6-8x on
the raw fit): CI runners are noisy, and the gate exists to catch an
accidental return to per-feature Python iteration, not 20% wobble.
When numba is importable the jitted path is measured too and its
predictions asserted bit-identical; when absent, the guarded fallback
is what ships and ``numba`` is reported unavailable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.models.boosting import GradientBoostedTrees
from repro.models.histkernel import (
    available_fit_paths,
    numba_available,
    use_fit_path,
)
from repro.models.tree import BinnedDataset
from repro.store.runstore import report_fingerprint

#: The paper operating point: nt >= 600 trees over the 41 encoded
#: configuration parameters (+1 datasize column in the full pipeline).
N_TREES = 600
N_FEATURES = 41
N_ROWS = 600

#: CI regression gate for the NumPy kernel over the reference
#: (local speedups are far higher; see module doc).
SPEEDUP_FLOOR = 3.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_fit.json"


def _training_data():
    rng = np.random.default_rng(0)
    X = rng.random((N_ROWS, N_FEATURES))
    y = rng.normal(size=N_ROWS)
    return X, y


def _fit_gbt(X, y, path):
    with use_fit_path(path):
        start = time.perf_counter()
        model = GradientBoostedTrees(
            n_trees=N_TREES, patience=N_TREES, random_state=0
        ).fit(X, y)
        seconds = time.perf_counter() - start
    assert model.n_trees_fitted == N_TREES
    return model, seconds


def _run_tuner(path):
    """Full collect→fit(HM)→tune pipeline under one fit path."""
    from repro.core.tuner import DacTuner
    from repro.workloads import get_workload

    with use_fit_path(path):
        tuner = DacTuner(
            get_workload("TS"), n_train=240, n_trees=N_TREES, seed=7
        )
        tuner.collect()
        fit_start = time.perf_counter()
        tuner.fit()
        fit_seconds = time.perf_counter() - fit_start
        tune_start = time.perf_counter()
        report = tuner.tune(10.0, generations=20, population_size=40)
        tune_seconds = time.perf_counter() - tune_start
    return report, fit_seconds, tune_seconds


def test_fit_speedup_and_fingerprint_parity():
    X, y = _training_data()
    # Warm the shared-binner cache so neither timed path pays (or
    # skips) quantile-edge construction unfairly.
    BinnedDataset.shared(X[np.random.default_rng(0).permutation(N_ROWS)[120:]])

    results = {
        "n_trees": N_TREES,
        "n_features": N_FEATURES,
        "n_rows": N_ROWS,
        "numba_available": numba_available(),
        "paths": {},
    }

    models = {}
    for path in available_fit_paths():
        model, seconds = _fit_gbt(X, y, path)
        models[path] = model
        results["paths"][path] = {
            "fit_seconds": round(seconds, 3),
            "trees_per_s": round(N_TREES / seconds, 1),
            "row_fits_per_s": round(N_ROWS * N_TREES / seconds, 1),
        }

    speedup = (
        results["paths"]["reference"]["fit_seconds"]
        / results["paths"]["numpy"]["fit_seconds"]
    )
    results["speedup_numpy_vs_reference"] = round(speedup, 2)
    results["speedup_floor"] = SPEEDUP_FLOOR

    # Same trees, bit for bit, whatever the path.
    probe = np.random.default_rng(1).random((256, N_FEATURES))
    expected = models["reference"].predict(probe).tobytes()
    for path, model in models.items():
        assert model.predict(probe).tobytes() == expected, (
            f"{path} fit diverged from the reference model"
        )

    # End-to-end: the tuning report must be fingerprint-identical.
    tune = {}
    for path in ("reference", "numpy"):
        report, fit_seconds, tune_seconds = _run_tuner(path)
        tune[path] = {
            "model_fit_wall_s": round(fit_seconds, 3),
            "search_wall_s": round(tune_seconds, 3),
            "fingerprint": report_fingerprint(report),
        }
    results["tune"] = tune
    assert tune["reference"]["fingerprint"] == tune["numpy"]["fingerprint"], (
        "kernel-fit tuning run is not fingerprint-identical to the "
        "reference-fit run — the histogram kernel changed a split"
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    rows = "\n".join(
        f"  {path:>9}  fit {entry['fit_seconds']:>7.3f}s"
        f"  {entry['trees_per_s']:>8.1f} trees/s"
        f"  {entry['row_fits_per_s']:>12.1f} row-fits/s"
        for path, entry in results["paths"].items()
    )
    print(
        f"\nmodel fit, {N_TREES} trees x {N_FEATURES} features x "
        f"{N_ROWS} rows (floor {SPEEDUP_FLOOR}x):\n{rows}\n"
        f"  kernel speedup {speedup:.2f}x; tune fingerprints equal "
        f"({tune['numpy']['fingerprint'][:16]}…); "
        f"numba {'present' if results['numba_available'] else 'absent'}\n"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"histogram kernel only {speedup:.1f}x over the reference fit "
        f"(floor {SPEEDUP_FLOOR}x) — regression on the vectorized fit path"
    )


def test_kernel_equals_reference_at_bench_scale():
    """Node tables must agree bitwise at bench scale, or the bench is moot."""
    X, y = _training_data()
    with use_fit_path("reference"):
        ref = GradientBoostedTrees(n_trees=40, patience=40, random_state=3).fit(X, y)
    with use_fit_path("numpy"):
        knl = GradientBoostedTrees(n_trees=40, patience=40, random_state=3).fit(X, y)
    for t_ref, t_knl in zip(ref._trees, knl._trees):
        assert [
            (n.feature, n.bin_threshold, n.left, n.right) for n in t_ref._nodes
        ] == [
            (n.feature, n.bin_threshold, n.left, n.right) for n in t_knl._nodes
        ]
        assert np.array(
            [n.value for n in t_ref._nodes]
        ).tobytes() == np.array([n.value for n in t_knl._nodes]).tobytes()
