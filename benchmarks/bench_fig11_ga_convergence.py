"""Figure 11 bench: GA convergence iterations per program.

Paper: 48-64 iterations suffice, varying by program.  Reproduced claim:
every program's search converges within the budgeted generations.
"""

from conftest import report

from repro.experiments import fig11_ga_convergence
from repro.experiments.common import FAST


def test_fig11_ga_convergence(benchmark, once):
    result = benchmark.pedantic(fig11_ga_convergence.run, args=(FAST,), **once)
    report(result.render())
    assert result.all_converged_quickly
