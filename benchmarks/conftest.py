"""Benchmark configuration.

Each ``bench_fig*.py``/``bench_table*.py`` regenerates one table or
figure of the paper at FAST scale and prints the reproduced rows, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.  Heavy experiments run a single round; substrate
micro-benchmarks use pytest-benchmark's default calibration.
"""

from __future__ import annotations

import pytest


def report(text: str) -> None:
    """Print a reproduced table under the benchmark output."""
    print("\n" + text + "\n")


@pytest.fixture(scope="session")
def once():
    """Pedantic single-round settings for heavy experiment benchmarks."""
    return dict(rounds=1, iterations=1, warmup_rounds=0)
